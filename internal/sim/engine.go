package sim

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"calib"
	"calib/api"
	"calib/internal/ise"
	"calib/internal/obs"
	"calib/internal/server"
)

// Event kinds, in tie-break priority order at equal virtual times:
// departures first (a freed slot admits a same-instant arrival),
// arrivals second, queue deadlines last (a same-instant departure
// rescues the queued head instead of shedding it). Within a kind,
// push order (seq) decides — arrivals are pushed in workload order.
const (
	actDeparture = iota // a virtually in-flight solve completes (leader or error)
	actFollower         // a follower's leader completes; serve the follower now
	actArrival
	actDeadline // a queued request's wait expires
)

func actPriority(act int8) int8 {
	switch act {
	case actArrival:
		return 1
	case actDeadline:
		return 2
	default:
		return 0
	}
}

type event struct {
	at  int64
	act int8
	seq int64
	rr  *runReq
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	if pa, pb := actPriority(h[a].act), actPriority(h[b].act); pa != pb {
		return pa < pb
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Outcome kinds of one request under one policy.
const (
	kindHit      = "hit"
	kindLeader   = "leader"
	kindFollower = "follower"
	kindShed     = "shed"
	kindError    = "error"
)

// outcome is what one policy did with one request.
type outcome struct {
	req       *request
	kind      string
	latencyNS int64
	queuedNS  int64 // virtual time spent in the admission queue
	admission string
	cacheRole string
	status    int
}

// runReq is a request's per-policy mutable state.
type runReq struct {
	*request
	key         uint64 // canonical key, resolved at first processing
	inQueue     bool
	wasQueued   bool
	queuedAtNS  int64
	wasFollower bool
}

// RunOptions carries the optional sinks of one policy run.
type RunOptions struct {
	// TraceLog, when non-nil, receives every decision record —
	// including the simulator-synthesized shed records — in the same
	// JSONL format ised -trace-log writes, so a simulated run's trace
	// replays through isesim -replay.
	TraceLog *server.TraceLog
	// Metrics receives the run's sim_*, service_*, cache_* and solver
	// series (nil = a private registry).
	Metrics *obs.Registry
}

// run is one policy's simulation state.
type run struct {
	w     *Workload
	pol   PolicySpec
	reg   *obs.Registry
	clock *vclock
	srv   *server.Server
	tlog  *server.TraceLog

	events eventHeap
	seq    int64
	queue  []*runReq
	// readyAt maps a canonical key to the virtual completion time of
	// its in-flight leader solve. The cache itself cannot answer
	// "in flight": the leader's synchronous ServeHTTP filled it
	// immediately, while virtually the solve is still running — so
	// the in-flight check must come before the cache peek.
	readyAt map[uint64]int64

	curCost int64 // virtual cost of the request being served (read by solveFunc)

	outs   []outcome
	endNS  int64
	nEvent int64

	mShed, mQueued, mHits, mFollowers, mSolves, mEvents *obs.Counter
	mVirtual                                            *obs.Gauge
	mReqClass                                           []*obs.Counter
}

// runPolicy simulates the workload under one policy and returns the
// per-request outcomes in completion order plus the virtual end time.
// The run is a pure function of (w, pol, seed baked into w): two
// calls produce identical outcomes.
func runPolicy(w *Workload, pol PolicySpec, opts RunOptions) ([]outcome, int64, error) {
	pol = pol.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	obs.DeclareSim(reg)
	clock := &vclock{}
	r := &run{
		w:       w,
		pol:     pol,
		reg:     reg,
		clock:   clock,
		tlog:    opts.TraceLog,
		readyAt: map[uint64]int64{},
		outs:    make([]outcome, 0, len(w.Requests)),

		mShed:      reg.Counter(obs.MSimShed),
		mQueued:    reg.Counter(obs.MSimQueued),
		mHits:      reg.Counter(obs.MSimCacheHits),
		mFollowers: reg.Counter(obs.MSimFollowers),
		mSolves:    reg.Counter(obs.MSimSolves),
		mEvents:    reg.Counter(obs.MSimEvents),
		mVirtual:   reg.Gauge(obs.MSimVirtualSeconds),
	}
	for _, c := range w.Classes {
		r.mReqClass = append(r.mReqClass, reg.CounterWith(obs.MSimRequests, "class", c.Name))
	}
	cacheEntries := pol.CacheEntries
	r.srv = server.New(server.Config{
		MaxInFlight: pol.MaxInflight,
		// Server-side queueing stays off: queue waits would arm real
		// timers. The bounded queue is modeled below in virtual time.
		MaxQueue:     -1,
		CacheEntries: cacheEntries,
		WarmStart:    pol.WarmStart,
		Parallelism:  1, // deterministic solver scheduling
		Metrics:      reg,
		Solve:        r.solveFunc,
		TraceLog:     opts.TraceLog,
		Clock:        clock,
	})

	for _, req := range w.Requests {
		r.push(req.ArrivalNS, actArrival, &runReq{request: req})
	}
	heap.Init(&r.events)
	for r.events.Len() > 0 {
		ev := heap.Pop(&r.events).(event)
		r.nEvent++
		if ev.at > r.endNS {
			r.endNS = ev.at
		}
		switch ev.act {
		case actArrival:
			r.process(ev.rr, ev.at)
		case actDeparture:
			r.srv.ReleaseSlot()
			if t, ok := r.readyAt[ev.rr.key]; ok && t == ev.at {
				delete(r.readyAt, ev.rr.key)
			}
			r.drain(ev.at)
		case actFollower:
			r.srv.ReleaseSlot()
			ev.rr.wasFollower = true
			r.process(ev.rr, ev.at)
			r.drain(ev.at)
		case actDeadline:
			if ev.rr.inQueue {
				ev.rr.inQueue = false
				r.shed(ev.rr, ev.at)
			}
		}
	}
	r.mEvents.Add(r.nEvent)
	r.mVirtual.Set(float64(r.endNS) / 1e9)
	if len(r.outs) != len(w.Requests) {
		return nil, 0, fmt.Errorf("sim: %d outcomes for %d requests", len(r.outs), len(w.Requests))
	}
	return r.outs, r.endNS, nil
}

func (r *run) push(at int64, act int8, rr *runReq) {
	r.seq++
	heap.Push(&r.events, event{at: at, act: act, seq: r.seq, rr: rr})
}

// process decides a request's fate at virtual time now (its arrival,
// or its dequeue from the virtual admission queue). The decision
// order mirrors the real request path — in-flight leader first (the
// singleflight join), then the cache, then admission for a fresh
// solve — except that "in flight" is virtual-time knowledge only the
// simulator has.
func (r *run) process(rr *runReq, now int64) {
	key, cached := r.srv.PeekCache(rr.Inst)
	rr.key = key
	if ready, ok := r.readyAt[key]; ok && ready > now {
		// A leader for this key is virtually in flight: join it.
		// Followers hold an admission slot while they wait, exactly as
		// a blocked singleflight caller does.
		if r.srv.AcquireSlot() {
			r.push(ready, actFollower, rr)
			return
		}
		r.enqueue(rr, now)
		return
	}
	if cached {
		rec := r.serve(rr)
		kind, lat := kindHit, now-rr.ArrivalNS+int64(r.w.Cost.HitUS*1e3)
		r.mHits.Inc()
		if rr.wasFollower {
			kind, lat = kindFollower, now-rr.ArrivalNS+int64(r.w.Cost.FollowerUS*1e3)
			r.mHits.Add(-1)
			r.mFollowers.Inc()
		}
		r.finish(rr, rec, kind, lat, now)
		return
	}
	// Cache miss: the request needs a slot for a leader solve.
	if !r.srv.AcquireSlot() {
		r.enqueue(rr, now)
		return
	}
	// Probe only — ServeHTTP's own admission acquire must see the
	// free slot so the decision record reads "admitted". Single-
	// threaded, so nothing can steal it in between.
	r.srv.ReleaseSlot()
	r.curCost = rr.CostNS
	rec := r.serve(rr)
	if rec.Admission != "admitted" {
		// Rejected before any solve ran (validation failure): no
		// virtual occupancy to model.
		r.finish(rr, rec, kindError, now-rr.ArrivalNS, now)
		return
	}
	if !r.srv.AcquireSlot() {
		panic("sim: admission slot vanished mid-event")
	}
	done := now + rr.CostNS
	kind := kindLeader
	if rec.Status == http.StatusOK {
		r.readyAt[key] = done
		r.mSolves.Inc()
	} else {
		kind = kindError // the solve ran (and failed); it still occupied the slot
	}
	r.push(done, actDeparture, rr)
	r.finish(rr, rec, kind, done-rr.ArrivalNS, now)
}

// enqueue puts rr in the virtual admission queue, or sheds when the
// policy has no queue or it is full.
func (r *run) enqueue(rr *runReq, now int64) {
	waitNS := int64(r.pol.QueueWaitMS * 1e6)
	if r.pol.MaxQueue <= 0 || waitNS <= 0 || r.queueDepth() >= r.pol.MaxQueue {
		r.shed(rr, now)
		return
	}
	rr.inQueue = true
	rr.wasQueued = true
	rr.queuedAtNS = now
	r.queue = append(r.queue, rr)
	r.mQueued.Inc()
	r.push(now+waitNS, actDeadline, rr)
}

func (r *run) queueDepth() int {
	n := 0
	for _, q := range r.queue {
		if q.inQueue {
			n++
		}
	}
	return n
}

// drain re-processes queued requests in FIFO order while slots are
// free. Entries already shed by their deadline are skipped.
func (r *run) drain(now int64) {
	for {
		var rr *runReq
		for len(r.queue) > 0 {
			head := r.queue[0]
			if !head.inQueue {
				r.queue = r.queue[1:]
				continue
			}
			rr = head
			break
		}
		if rr == nil {
			return
		}
		if !r.srv.AcquireSlot() {
			return
		}
		r.srv.ReleaseSlot()
		r.queue = r.queue[1:]
		rr.inQueue = false
		r.process(rr, now)
	}
}

// shed refuses rr. The decision is the simulator's — taken in virtual
// time, where the slot-or-queue shortage exists — so the record is
// synthesized here rather than forced through the server, whose
// synchronous cache may already hold the key a virtually in-flight
// leader is still computing.
func (r *run) shed(rr *runReq, now int64) {
	rec := server.Record{
		ID: rr.ID, Route: "solve", ArrivalNS: rr.ArrivalNS,
		TotalNS: now - rr.ArrivalNS, Status: http.StatusTooManyRequests,
		Outcome: "shed", Admission: "shed",
	}
	if f := r.srv.Flight(); f != nil {
		f.Add(&rec)
	}
	if r.tlog != nil {
		r.tlog.Append(&rec)
	}
	r.mShed.Inc()
	r.finish(rr, &rec, kindShed, now-rr.ArrivalNS, now)
}

// finish records rr's outcome.
func (r *run) finish(rr *runReq, rec *server.Record, kind string, latencyNS, now int64) {
	r.mReqClass[rr.Class].Inc()
	queued := int64(0)
	if rr.wasQueued {
		queued = now - rr.queuedAtNS
	}
	r.outs = append(r.outs, outcome{
		req:       rr.request,
		kind:      kind,
		latencyNS: latencyNS,
		queuedNS:  queued,
		admission: rec.Admission,
		cacheRole: rec.Cache,
		status:    rec.Status,
	})
}

// serve pushes rr through the real mux synchronously, with the
// virtual clock rewound to the request's arrival so the decision
// record stamps true arrival time, and returns the record the server
// published for it.
func (r *run) serve(rr *runReq) *server.Record {
	r.clock.Set(rr.ArrivalNS)
	body, err := json.Marshal(api.SolveRequest{
		Instance:     rr.Inst,
		SolveOptions: api.SolveOptions{Budget: rr.Budget},
	})
	if err != nil {
		panic("sim: marshal request: " + err.Error())
	}
	req, err := http.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	if err != nil {
		panic("sim: build request: " + err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rr.ID)
	var w respWriter
	w.h = make(http.Header)
	r.srv.ServeHTTP(&w, req)
	rec, ok := r.srv.Flight().Get(rr.ID)
	if !ok {
		// The flight recorder is always enabled in simulated runs;
		// reconstruct a minimal record defensively.
		rec = server.Record{ID: rr.ID, Route: "solve", ArrivalNS: rr.ArrivalNS, Status: w.code}
	}
	return &rec
}

// solveFunc is the server's SolveFunc during simulation: it advances
// the virtual clock by the request's cost — so the record's SolveNS
// is the virtual cost, which replay later reads back — then runs the
// real robust ladder with no wall-clock timeout (wall deadlines are
// nondeterministic; budgets are the deterministic limit).
func (r *run) solveFunc(ctx context.Context, inst *ise.Instance, _ time.Duration, budget int64) (*server.Result, error) {
	r.clock.Advance(time.Duration(r.curCost))
	sol, err := calib.SolveRobust(inst, &calib.Options{
		WarmStart:   r.pol.WarmStart,
		Parallelism: 1,
		Metrics:     r.reg,
		Context:     ctx,
		Budget:      budget,
	})
	if err != nil {
		return nil, err
	}
	return &server.Result{
		Schedule:     sol.Schedule,
		Calibrations: sol.Calibrations,
		MachinesUsed: sol.MachinesUsed,
		Components:   sol.Components,
		LowerBound:   sol.LowerBound,
		Degraded:     sol.Degraded,
		Exact:        sol.Exact,
		Rung:         sol.RungSummary(),
		Falls:        sol.Falls(),
	}, nil
}

// respWriter is the in-process ResponseWriter: headers and status
// only — response bodies are discarded, the decision record is the
// simulator's source of truth.
type respWriter struct {
	h    http.Header
	code int
}

func (w *respWriter) Header() http.Header { return w.h }
func (w *respWriter) WriteHeader(c int)   { w.code = c }
func (w *respWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return len(p), nil
}
