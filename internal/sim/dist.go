package sim

import (
	"math"
	"math/rand"
)

// gapSampler draws one inter-arrival gap in seconds.
type gapSampler func(rng *rand.Rand) float64

// newGapSampler builds the sampler for an arrival spec. All three
// distributions are parameterized to a mean gap of 1/rate seconds so
// rate_per_sec means the same thing regardless of process; shape then
// only controls variability (gamma shape > 1 is steadier than
// Poisson, weibull shape < 1 is burstier).
func newGapSampler(a ArrivalSpec) gapSampler {
	mean := 1 / a.RatePerSec
	switch a.Process {
	case "gamma":
		shape := a.Shape
		scale := mean / shape
		return func(rng *rand.Rand) float64 { return gammaDraw(rng, shape) * scale }
	case "weibull":
		shape := a.Shape
		// E[Weibull(shape, scale)] = scale * Gamma(1 + 1/shape).
		scale := mean / math.Gamma(1+1/shape)
		return func(rng *rand.Rand) float64 {
			u := rng.Float64()
			return scale * math.Pow(-math.Log(1-u), 1/shape)
		}
	default: // poisson
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() * mean }
	}
}

// gammaDraw samples Gamma(shape, 1) by Marsaglia–Tsang (2000), the
// standard squeeze method: for shape >= 1 accept d*v where v=(1+c*x)^3
// with x standard normal; shape < 1 boosts through Gamma(shape+1) and
// a uniform power. Deterministic given rng.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
