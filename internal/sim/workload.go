package sim

import (
	"fmt"
	"sort"

	"calib/internal/fault"
	"calib/internal/ise"
	"calib/internal/workload"
)

// Class is the runtime metadata of one client population: the name
// requests are labeled with in the report and the class's SLO.
type Class struct {
	Name      string
	SLOMS     float64
	Objective float64
}

// request is one virtual client request, fully determined before any
// policy runs: the arrival time, the instance (shared by every
// request that drew the same distinct index, which is what makes
// cache hits possible), the virtual leader-solve cost, and the solver
// budget. Policies never mutate requests — per-policy state lives in
// the engine's runReq wrapper — so every policy replays the identical
// workload.
type request struct {
	ID        string
	Class     int // index into Workload.Classes
	ArrivalNS int64
	Inst      *ise.Instance
	CostNS    int64
	Budget    int64
}

// Workload is the policy-independent input to the engine: the request
// sequence (sorted by arrival) plus class metadata and the cost
// model's overhead terms.
type Workload struct {
	Name     string
	Classes  []Class
	Requests []*request
	Cost     CostModel
}

// BuildWorkload materializes the spec's request sequence for the
// given seed. Each class draws its arrivals, instance picks, and cost
// jitter from independent named streams (fault.Stream), so the draw
// for one class never depends on another class's configuration — a
// spec edit that adds a class leaves every other class's requests
// identical, and every policy comparison runs over the same
// sequence.
func BuildWorkload(spec *Spec, seed int64) (*Workload, error) {
	w := &Workload{Name: spec.Name, Cost: spec.Cost.withDefaults()}
	horizonNS := int64(spec.DurationMS * 1e6)
	for ci, cs := range spec.Classes {
		w.Classes = append(w.Classes, Class{Name: cs.Name, SLOMS: cs.SLOMS, Objective: cs.Objective})

		insts := make([]*ise.Instance, cs.Instances.Distinct)
		for i := range insts {
			g := fault.Stream(seed, fmt.Sprintf("inst/%s/%d", cs.Name, i))
			inst, err := workload.Family(g, cs.Instances.Family, workload.FamilyConfig{
				N: cs.Instances.N, M: cs.Instances.M, T: cs.Instances.T,
				LongProb: cs.Instances.LongProb, Clusters: cs.Instances.Clusters,
			})
			if err != nil {
				return nil, fmt.Errorf("class %s: %w", cs.Name, err)
			}
			if err := inst.Validate(); err != nil {
				return nil, fmt.Errorf("class %s: generated invalid instance: %w", cs.Name, err)
			}
			insts[i] = inst
		}

		arrive := fault.Stream(seed, "arrival/"+cs.Name)
		pick := fault.Stream(seed, "pick/"+cs.Name)
		cost := fault.Stream(seed, "cost/"+cs.Name)
		gap := newGapSampler(cs.Arrival)

		t := 0.0
		for k := 0; ; k++ {
			t += gap(arrive)
			at := int64(t * 1e9)
			if at >= horizonNS {
				break
			}
			inst := insts[pick.Intn(len(insts))]
			jitter := 1.0
			if w.Cost.Jitter > 0 {
				jitter = 1 + w.Cost.Jitter*(2*cost.Float64()-1)
			}
			costNS := int64((w.Cost.BaseUS + w.Cost.PerJobUS*float64(inst.N())) * jitter * 1e3)
			if costNS < 1 {
				costNS = 1
			}
			w.Requests = append(w.Requests, &request{
				ID:        fmt.Sprintf("sim-%s-%d", cs.Name, k),
				Class:     ci,
				ArrivalNS: at,
				Inst:      inst,
				CostNS:    costNS,
				Budget:    cs.Budget,
			})
		}
	}
	sortRequests(w.Requests)
	return w, nil
}

// sortRequests fixes the total arrival order: by time, then by class
// index, then by the per-class sequence already encoded in generation
// order (SliceStable preserves it). The engine's event queue inherits
// this order for simultaneous arrivals, which is one of the ties the
// determinism gate depends on.
func sortRequests(reqs []*request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		if reqs[a].ArrivalNS != reqs[b].ArrivalNS {
			return reqs[a].ArrivalNS < reqs[b].ArrivalNS
		}
		return reqs[a].Class < reqs[b].Class
	})
}
