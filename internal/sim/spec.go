package sim

import (
	"encoding/json"
	"fmt"
	"os"

	"calib/internal/ise"
)

// Spec is the JSON workload specification consumed by cmd/isesim (see
// docs/SIMULATOR.md for the file format and testdata/sim/ for the
// pinned CI specs). A spec names the workload (classes of clients
// with arrival processes and instance families), the virtual cost
// model, and the candidate serving policies to compare.
type Spec struct {
	// Name labels the report ("steady", "burst").
	Name string `json:"name"`
	// Seed is the default PRNG seed (-seed overrides it).
	Seed int64 `json:"seed"`
	// DurationMS is the virtual time horizon: arrivals are generated
	// until it is exhausted.
	DurationMS float64 `json:"duration_ms"`
	// Cost is the virtual cost model shared by all classes.
	Cost CostModel `json:"cost"`
	// Classes are the client populations.
	Classes []ClassSpec `json:"classes"`
	// Policies are the serving configurations to evaluate.
	Policies []PolicySpec `json:"policies"`
}

// CostModel maps requests to virtual durations. A leader solve costs
// BaseUS + PerJobUS per job, scaled by a uniform jitter of ±Jitter
// drawn per request; cache hits cost HitUS and singleflight followers
// pay FollowerUS on top of waiting for their leader.
type CostModel struct {
	BaseUS     float64 `json:"base_us"`
	PerJobUS   float64 `json:"per_job_us"`
	Jitter     float64 `json:"jitter"`
	HitUS      float64 `json:"hit_us"`
	FollowerUS float64 `json:"follower_us"`
}

func (c CostModel) withDefaults() CostModel {
	if c.BaseUS <= 0 {
		c.BaseUS = 500
	}
	if c.PerJobUS < 0 {
		c.PerJobUS = 0
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0
	}
	if c.HitUS <= 0 {
		c.HitUS = 30
	}
	if c.FollowerUS <= 0 {
		c.FollowerUS = 50
	}
	return c
}

// ArrivalSpec is a renewal arrival process: inter-arrival gaps are
// drawn i.i.d. from the named distribution with mean 1/RatePerSec.
type ArrivalSpec struct {
	// Process is "poisson" (exponential gaps), "gamma", or "weibull".
	// Gamma with Shape > 1 models steadier-than-Poisson arrivals;
	// Weibull with Shape < 1 models bursts.
	Process string `json:"process"`
	// RatePerSec is the mean arrival rate.
	RatePerSec float64 `json:"rate_per_sec"`
	// Shape is the gamma/weibull shape parameter (default 2).
	Shape float64 `json:"shape,omitempty"`
}

// InstanceSpec configures a class's instance population: Distinct
// unique instances drawn from a cmd/isegen workload family, sampled
// uniformly per request. Distinct controls cache-hit potential — the
// smaller it is relative to the request count, the hotter the cache.
type InstanceSpec struct {
	Family   string   `json:"family"`
	N        int      `json:"n"`
	M        int      `json:"m"`
	T        ise.Time `json:"t"`
	Distinct int      `json:"distinct"`
	LongProb float64  `json:"long_prob,omitempty"`
	Clusters int      `json:"clusters,omitempty"`
}

// ClassSpec is one client population.
type ClassSpec struct {
	Name      string       `json:"name"`
	Arrival   ArrivalSpec  `json:"arrival"`
	Instances InstanceSpec `json:"instances"`
	// SLOMS is the class's latency SLO threshold in milliseconds
	// (default 100); a shed request always burns budget.
	SLOMS float64 `json:"slo_ms,omitempty"`
	// Objective is the target fraction of requests under SLOMS
	// (default 0.99).
	Objective float64 `json:"objective,omitempty"`
	// Budget is the per-solve work budget passed with each request
	// (0 = server default). Budgets, not timeouts, are how simulated
	// solves are limited: they are deterministic.
	Budget int64 `json:"budget,omitempty"`
}

// PolicySpec is one serving configuration under test: the knobs of
// server.Config the capacity analysis varies.
type PolicySpec struct {
	Name string `json:"name"`
	// MaxInflight bounds concurrent virtual solves (default 4).
	MaxInflight int `json:"max_inflight"`
	// MaxQueue bounds the virtual admission queue (0 = no queue:
	// shed the moment no slot is free).
	MaxQueue int `json:"max_queue"`
	// QueueWaitMS is the longest virtual queue wait before a shed.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// CacheEntries sizes the schedule cache (0 = server default,
	// < 0 = disable storage).
	CacheEntries int `json:"cache_entries"`
	// WarmStart enables LP warm starts in the solver.
	WarmStart bool `json:"warm_start"`
}

func (p PolicySpec) withDefaults() PolicySpec {
	if p.MaxInflight <= 0 {
		p.MaxInflight = 4
	}
	return p
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (*Spec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the spec and fills defaults in place.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec missing name")
	}
	if s.DurationMS <= 0 {
		return fmt.Errorf("spec %s: duration_ms must be positive", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("spec %s: no classes", s.Name)
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("spec %s: no policies", s.Name)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.Cost = s.Cost.withDefaults()
	seen := map[string]bool{}
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("spec %s: class %d missing name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("spec %s: duplicate class %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Arrival.Process {
		case "poisson", "gamma", "weibull":
		case "":
			c.Arrival.Process = "poisson"
		default:
			return fmt.Errorf("spec %s: class %s: unknown arrival process %q", s.Name, c.Name, c.Arrival.Process)
		}
		if c.Arrival.RatePerSec <= 0 {
			return fmt.Errorf("spec %s: class %s: rate_per_sec must be positive", s.Name, c.Name)
		}
		if c.Arrival.Shape <= 0 {
			c.Arrival.Shape = 2
		}
		ins := &c.Instances
		if ins.Family == "" {
			ins.Family = "mixed"
		}
		if ins.N <= 0 {
			ins.N = 16
		}
		if ins.M <= 0 {
			ins.M = 2
		}
		if ins.T < 2 {
			ins.T = 10
		}
		if ins.Distinct <= 0 {
			ins.Distinct = 32
		}
		if c.SLOMS <= 0 {
			c.SLOMS = 100
		}
		if c.Objective <= 0 || c.Objective >= 1 {
			c.Objective = 0.99
		}
	}
	seen = map[string]bool{}
	for i := range s.Policies {
		p := &s.Policies[i]
		if p.Name == "" {
			return fmt.Errorf("spec %s: policy %d missing name", s.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("spec %s: duplicate policy %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		s.Policies[i] = p.withDefaults()
	}
	return nil
}

// Policy returns the named policy, or an error listing the valid
// names (the -compare flag resolves through here).
func (s *Spec) Policy(name string) (PolicySpec, error) {
	for _, p := range s.Policies {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(s.Policies))
	for i, p := range s.Policies {
		names[i] = p.Name
	}
	return PolicySpec{}, fmt.Errorf("unknown policy %q (spec has %v)", name, names)
}
