package sim

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"calib/internal/obs"
	"calib/internal/server"
)

// testSpec is small enough for the race detector but hot enough to
// exercise every verdict: with 15ms virtual solves at ~90 req/s and
// one slot, the tight policy queues and sheds while the cache absorbs
// repeats of the 6 distinct instances per class.
func testSpec() *Spec {
	s := &Spec{
		Name:       "unit",
		Seed:       11,
		DurationMS: 400,
		Cost:       CostModel{BaseUS: 15000, PerJobUS: 500, Jitter: 0.2},
		Classes: []ClassSpec{
			{
				Name:      "fast",
				Arrival:   ArrivalSpec{Process: "poisson", RatePerSec: 60},
				Instances: InstanceSpec{Family: "mixed", N: 10, M: 2, T: 8, Distinct: 6},
				SLOMS:     20,
			},
			{
				Name:      "slow",
				Arrival:   ArrivalSpec{Process: "gamma", RatePerSec: 30, Shape: 3},
				Instances: InstanceSpec{Family: "short", N: 12, M: 1, T: 8, Distinct: 6},
				SLOMS:     60,
			},
		},
		Policies: []PolicySpec{
			{Name: "tight", MaxInflight: 1, MaxQueue: 2, QueueWaitMS: 10, CacheEntries: 64},
			{Name: "roomy", MaxInflight: 8, MaxQueue: 8, QueueWaitMS: 20, CacheEntries: 1024},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func mustSimulate(t *testing.T, spec *Spec, seed int64, policies []PolicySpec, tlog *server.TraceLog) *Report {
	t.Helper()
	w, err := BuildWorkload(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Requests) == 0 {
		t.Fatal("spec generated no requests")
	}
	rep, err := Simulate(w, seed, policies, tlog)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSimulateDeterministic is the CI determinism gate in miniature:
// two full runs of the same seeded spec must produce byte-identical
// reports.
func TestSimulateDeterministic(t *testing.T) {
	spec := testSpec()
	a := mustSimulate(t, spec, spec.Seed, spec.Policies, nil)
	b := mustSimulate(t, spec, spec.Seed, spec.Policies, nil)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("two runs of the same seed diverged:\n%s\nvs\n%s", ja, jb)
	}
}

// TestSimulateExercisesAllVerdicts guards the spec tuning: a workload
// with no contention tests nothing, so fail loudly if the tight
// policy stops shedding or queueing or the cache stops hitting.
func TestSimulateExercisesAllVerdicts(t *testing.T) {
	spec := testSpec()
	rep := mustSimulate(t, spec, spec.Seed, spec.Policies, nil)
	tight := rep.Policies[0]
	if tight.Shed == 0 {
		t.Error("tight policy shed nothing; spec no longer creates contention")
	}
	if tight.Queued == 0 {
		t.Error("tight policy queued nothing")
	}
	if tight.CacheHits == 0 {
		t.Error("no cache hits; distinct-instance reuse broke")
	}
	if tight.Solves == 0 {
		t.Error("no leader solves")
	}
	if tight.Errors != 0 {
		t.Errorf("%d solver errors", tight.Errors)
	}
	roomy := rep.Policies[1]
	if roomy.Shed >= tight.Shed {
		t.Errorf("roomy policy shed %d >= tight %d; counterfactual direction wrong", roomy.Shed, tight.Shed)
	}
}

// TestReplayRoundTrip is the property the replay subsystem promises:
// a trace recorded by -trace-log, replayed through the simulator
// under the policy that produced it, reproduces every per-request
// admission verdict and cache outcome exactly.
func TestReplayRoundTrip(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	pol := []PolicySpec{spec.Policies[0]} // tight: sheds, queues, hits

	record := func(path string, w *Workload) map[string]server.Record {
		t.Helper()
		tlog, err := server.OpenTraceLog(path, 0, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Simulate(w, spec.Seed, pol, tlog); err != nil {
			t.Fatal(err)
		}
		if err := tlog.Close(); err != nil {
			t.Fatal(err)
		}
		recs, skipped, err := server.ReadTraceLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 0 {
			t.Fatalf("%d corrupt records in %s", skipped, path)
		}
		byID := make(map[string]server.Record, len(recs))
		for _, rec := range recs {
			byID[rec.ID] = rec
		}
		return byID
	}

	w1, err := BuildWorkload(spec, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	orig := record(filepath.Join(dir, "orig.jsonl"), w1)

	recs, _, err := server.ReadTraceLog(filepath.Join(dir, "orig.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ReplayWorkload("unit", recs, spec.Seed, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Requests) != len(w1.Requests) {
		t.Fatalf("replay workload has %d requests, original %d", len(w2.Requests), len(w1.Requests))
	}
	replayed := record(filepath.Join(dir, "replay.jsonl"), w2)

	if len(replayed) != len(orig) {
		t.Fatalf("replay produced %d records, original %d", len(replayed), len(orig))
	}
	mismatches := 0
	for id, o := range orig {
		r, ok := replayed[id]
		if !ok {
			t.Errorf("request %s missing from replay", id)
			mismatches++
			continue
		}
		if r.Admission != o.Admission || r.Cache != o.Cache || r.Status != o.Status || r.Outcome != o.Outcome {
			t.Errorf("request %s: original {adm=%s cache=%s status=%d outcome=%s} replay {adm=%s cache=%s status=%d outcome=%s}",
				id, o.Admission, o.Cache, o.Status, o.Outcome, r.Admission, r.Cache, r.Status, r.Outcome)
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d verdicts diverged on replay", mismatches, len(orig))
	}
}

// TestCounterfactualCacheSize checks the comparison the tool exists
// for: the same trace under a starved cache must hit less.
func TestCounterfactualCacheSize(t *testing.T) {
	spec := testSpec()
	policies := []PolicySpec{
		{Name: "big-cache", MaxInflight: 2, MaxQueue: 4, QueueWaitMS: 10, CacheEntries: 1024},
		{Name: "tiny-cache", MaxInflight: 2, MaxQueue: 4, QueueWaitMS: 10, CacheEntries: 1},
	}
	rep := mustSimulate(t, spec, spec.Seed, policies, nil)
	big, tiny := rep.Policies[0], rep.Policies[1]
	if big.CacheHitRate <= tiny.CacheHitRate {
		t.Errorf("big cache hit rate %.4f <= tiny cache %.4f", big.CacheHitRate, tiny.CacheHitRate)
	}
	if tiny.Solves <= big.Solves {
		t.Errorf("tiny cache solves %d <= big cache %d; evictions not forcing re-solves", tiny.Solves, big.Solves)
	}
}

func TestSpecValidate(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name: "v", DurationMS: 100,
			Classes:  []ClassSpec{{Name: "a", Arrival: ArrivalSpec{RatePerSec: 10}}},
			Policies: []PolicySpec{{Name: "p"}},
		}
	}

	s := base()
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	c := s.Classes[0]
	if c.Arrival.Process != "poisson" || c.SLOMS != 100 || c.Objective != 0.99 ||
		c.Instances.Family != "mixed" || c.Instances.Distinct != 32 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if s.Policies[0].MaxInflight != 4 {
		t.Errorf("policy default not filled: %+v", s.Policies[0])
	}

	s = base()
	s.Classes = append(s.Classes, s.Classes[0])
	if err := s.Validate(); err == nil {
		t.Error("duplicate class name accepted")
	}
	s = base()
	s.Classes[0].Arrival.Process = "pareto"
	if err := s.Validate(); err == nil {
		t.Error("unknown arrival process accepted")
	}
	s = base()
	s.Policies = nil
	if err := s.Validate(); err == nil {
		t.Error("spec with no policies accepted")
	}
}

// TestBuildWorkloadClassIndependence pins the named-stream contract:
// adding a class must not perturb another class's request sequence.
func TestBuildWorkloadClassIndependence(t *testing.T) {
	spec := testSpec()
	w1, err := BuildWorkload(spec, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := testSpec()
	spec2.Classes = append(spec2.Classes, ClassSpec{
		Name:    "extra",
		Arrival: ArrivalSpec{Process: "weibull", RatePerSec: 25, Shape: 0.7},
	})
	if err := spec2.Validate(); err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorkload(spec2, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*request{}
	for _, r := range w2.Requests {
		byID[r.ID] = r
	}
	for _, r := range w1.Requests {
		r2, ok := byID[r.ID]
		if !ok {
			t.Fatalf("request %s vanished when a class was added", r.ID)
		}
		if r2.ArrivalNS != r.ArrivalNS || r2.CostNS != r.CostNS {
			t.Fatalf("request %s perturbed: arrival %d->%d cost %d->%d",
				r.ID, r.ArrivalNS, r2.ArrivalNS, r.CostNS, r2.CostNS)
		}
	}
}

func TestCompareGate(t *testing.T) {
	mk := func(p99, shed float64) *Report {
		return &Report{
			Schema: ReportSchema, Name: "unit",
			Policies: []PolicyReport{{
				Name: "p", ShedRate: shed,
				Classes: []ClassReport{{Name: "a", P99MS: p99}},
			}},
		}
	}
	base := mk(10, 0.02)

	if bad := Compare(base, mk(10.4, 0.021), 0.10); len(bad) != 0 {
		t.Errorf("within tolerance flagged: %v", bad)
	}
	// p99 past base*(1+tol) + 0.5ms floor.
	if bad := Compare(base, mk(12.0, 0.02), 0.10); len(bad) != 1 {
		t.Errorf("p99 regression not flagged: %v", bad)
	}
	// shed past base*(1+tol) + 0.01 floor.
	if bad := Compare(base, mk(10, 0.04), 0.10); len(bad) != 1 {
		t.Errorf("shed regression not flagged: %v", bad)
	}
	cur := mk(10, 0.02)
	cur.Schema = "ise-capacity/v0"
	if bad := Compare(base, cur, 0.10); len(bad) != 1 {
		t.Errorf("schema mismatch not flagged: %v", bad)
	}
	// A policy absent from the baseline passes (it is new).
	cur = mk(99, 0.5)
	cur.Policies[0].Name = "brand-new"
	if bad := Compare(base, cur, 0.10); len(bad) != 0 {
		t.Errorf("new policy flagged: %v", bad)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := quantile(vals, c.q); got != c.want {
			t.Errorf("quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty = %v", got)
	}
}
