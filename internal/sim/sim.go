// Package sim is a deterministic virtual-clock workload simulator for
// the ised serving layer. It drives the real server mux in-process —
// no sockets, no goroutine races, no wall-clock sleeps — with
// multi-class workloads (Poisson/Gamma/Weibull arrivals over the
// cmd/isegen instance families) or with recorded request traces from
// the -trace-log JSONL format, and replays the identical workload
// under alternate admission, queueing, and cache policies. The output
// is a per-policy capacity report (latency quantiles per class, shed
// rate, cache hit rate, SLO attainment and burn) with a stable JSON
// schema that CI diffs byte-for-byte and gates against committed
// baselines (scripts/capacitygate.sh).
//
// # Determinism
//
// Everything the engine does is a function of the seed. Arrival
// times, instances, and virtual solve costs are drawn from
// independent named PRNG streams (fault.Stream) before any policy
// runs, so every policy sees the identical workload draw-for-draw.
// The event loop is single-threaded with a total order on events
// (time, kind, sequence), the server runs on an injected virtual
// clock (server.Config.Clock) and with server-side queueing disabled
// — the bounded admission queue is modeled here, in virtual time —
// and solver calls run with no wall-clock timeout. Two runs of the
// same seed and spec therefore produce byte-identical reports, which
// is the property the CI determinism gate asserts.
//
// # Modeling
//
// The server answers each virtual request synchronously; virtual
// concurrency is represented by phantom admission-slot occupancy
// (server.AcquireSlot/ReleaseSlot) held between a solve's virtual
// start and departure, so the real admission controller sees the
// simulated in-flight population. Singleflight followers are modeled
// by a per-key ready time: a request for a key whose leader is still
// virtually in flight completes when the leader does. Three
// simulator-vs-production deltas are deliberate and documented in
// docs/SIMULATOR.md: decision records of simulated runs carry
// QueueNS=0 (queue waits live in the simulator's report instead),
// followers are recorded as cache hits (the leader's synchronous
// solve has already filled the cache), and shed records are
// synthesized by the simulator rather than the admission controller
// (the verdict is the simulator's, taken in virtual time).
package sim

import "time"

// vclock is the virtual time source injected into the server
// (server.Config.Clock). Time is nanoseconds from a fixed zero epoch;
// the engine sets it around every synchronous request so the server's
// stamps and durations are expressed in virtual time. It is not safe
// for concurrent use — the engine is single-threaded by design.
type vclock struct{ ns int64 }

func (c *vclock) Now() time.Time                  { return time.Unix(0, c.ns) }
func (c *vclock) Since(t time.Time) time.Duration { return time.Duration(c.ns - t.UnixNano()) }

// Set jumps the clock to an absolute virtual time. Jumps backwards
// are legal: the engine rewinds to a request's arrival time before
// serving it, so decision records stamp the true arrival even when
// the request was queued.
func (c *vclock) Set(ns int64) { c.ns = ns }

// Advance moves the clock forward by d; the simulator's solve
// function calls it so a leader's SolveNS lands in the decision
// record as the request's virtual cost.
func (c *vclock) Advance(d time.Duration) { c.ns += int64(d) }
