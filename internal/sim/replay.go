package sim

import (
	"fmt"
	"sort"

	"calib/internal/fault"
	"calib/internal/ise"
	"calib/internal/server"
	"calib/internal/workload"
)

// replayFamily sizes the instances synthesized for trace keys. The
// exact shape does not matter — what matters is that every record
// sharing a trace key maps to the same instance (so cache and
// singleflight dynamics reproduce) and records with different keys
// map to different instances.
var replayFamily = workload.FamilyConfig{N: 16, M: 2, T: 10}

// ReplayWorkload turns a -trace-log capture (ised's or isesim's) into
// a workload: one request per solve/batch record, arriving at the
// recorded times (rebased to zero), carrying a synthesized instance
// keyed by the record's canonical key and the leader's recorded
// SolveNS as virtual cost. Replaying the workload under the policy
// that produced the trace reproduces the original admission verdicts
// and cache outcomes; replaying it under a different policy is the
// counterfactual.
//
// Approximations, by necessity of what a trace records: batch records
// replay as a single solve of one synthesized instance (the trace
// holds one record for the whole batch); shed records carry no
// canonical key, so each synthesizes a unique instance — under the
// original policy it sheds again identically, under a roomier policy
// it becomes a cold solve rather than a possible cache hit; keys
// whose every record is a hit (cache warmed before the capture
// started) have no recorded SolveNS, so their cost is drawn from a
// key-seeded stream.
func ReplayWorkload(name string, recs []server.Record, seed int64, sloMS float64) (*Workload, error) {
	if sloMS <= 0 {
		sloMS = 100
	}
	w := &Workload{
		Name:    name,
		Classes: []Class{{Name: "replay", SLOMS: sloMS, Objective: 0.99}},
		Cost:    CostModel{}.withDefaults(),
	}

	type keyInfo struct {
		inst   *ise.Instance
		costNS int64
		budget int64
	}
	keys := map[string]*keyInfo{}
	var kept []server.Record
	for _, rec := range recs {
		if rec.Route != "solve" && rec.Route != "batch" {
			continue
		}
		if rec.Status != 0 && rec.Status != 200 && rec.Status != 429 {
			// Malformed requests (400s) carry no instance identity to
			// replay; drop them.
			continue
		}
		kept = append(kept, rec)
		if rec.Key == "" {
			continue
		}
		ki := keys[rec.Key]
		if ki == nil {
			ki = &keyInfo{}
			keys[rec.Key] = ki
		}
		if ki.costNS == 0 && rec.Cache == "leader" && rec.SolveNS > 0 {
			ki.costNS = rec.SolveNS
			ki.budget = rec.Budget
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("trace has no replayable records")
	}

	// Sort by recorded arrival, preserving file order for ties; rebase
	// so the first arrival is t=0.
	sort.SliceStable(kept, func(a, b int) bool { return kept[a].ArrivalNS < kept[b].ArrivalNS })
	base := kept[0].ArrivalNS

	synth := func(streamName string) *ise.Instance {
		g := fault.Stream(seed, streamName)
		inst, err := workload.Family(g, "mixed", replayFamily)
		if err != nil {
			panic("sim: replay synthesis: " + err.Error())
		}
		return inst
	}
	seen := map[string]int{}
	for _, rec := range kept {
		id := rec.ID
		if n := seen[rec.ID]; n > 0 {
			// Production traces can repeat an ID (client retries); keep
			// replay IDs unique so flight-record lookups stay exact.
			id = fmt.Sprintf("%s-r%d", rec.ID, n)
		}
		seen[rec.ID]++
		req := &request{
			ID:        id,
			Class:     0,
			ArrivalNS: rec.ArrivalNS - base,
		}
		if rec.Key != "" {
			ki := keys[rec.Key]
			if ki.inst == nil {
				ki.inst = synth("replay/key/" + rec.Key)
			}
			req.Inst = ki.inst
			req.CostNS = ki.costNS
			req.Budget = ki.budget
		} else {
			req.Inst = synth("replay/id/" + rec.ID)
		}
		if req.CostNS == 0 {
			// No leader record for this key: draw a stable fallback in
			// [200µs, 2ms) from a stream keyed the same way the
			// instance is.
			g := fault.Stream(seed, "replay/cost/"+req.ID)
			if rec.Key != "" {
				g = fault.Stream(seed, "replay/cost/"+rec.Key)
			}
			req.CostNS = int64(200e3 + g.Float64()*1800e3)
		}
		w.Requests = append(w.Requests, req)
	}
	return w, nil
}
