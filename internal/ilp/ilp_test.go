package ilp

import (
	"math"
	"math/rand"
	"testing"

	"calib/internal/lp"
)

func TestKnapsackStyle(t *testing.T) {
	// max 5a + 4b (min negation) s.t. 6a + 5b <= 10, a,b integer:
	// LP opt a=10/6; ILP opt a=1,b=0 (obj 5)? check b: a=0,b=2
	// (6*0+10<=10) obj 8. a=1,b=0: 6<=10 obj 5. So best is b=2: -8.
	p := lp.NewProblem()
	a := p.AddVar("a", -5)
	b := p.AddVar("b", -4)
	p.AddConstraint(lp.LE, 10, lp.Term{Var: a, Coeff: 6}, lp.Term{Var: b, Coeff: 5})
	res, err := Solve(p, []int{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-8)) > 1e-9 {
		t.Errorf("objective = %v, want -8", res.Objective)
	}
	if math.Abs(res.X[b]-2) > 1e-9 || math.Abs(res.X[a]) > 1e-9 {
		t.Errorf("x = %v, want a=0 b=2", res.X)
	}
}

func TestIntegralityForcesWorseObjective(t *testing.T) {
	// min x s.t. 2x >= 3: LP opt 1.5, ILP opt 2.
	p := lp.NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint(lp.GE, 3, lp.Term{Var: x, Coeff: 2})
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2) > 1e-9 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := lp.NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint(lp.GE, 0.4, lp.Term{Var: x, Coeff: 1})
	p.AddConstraint(lp.LE, 0.6, lp.Term{Var: x, Coeff: 1})
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Infeasible || res.Found {
		t.Errorf("status = %v found = %v, want infeasible", res.Status, res.Found)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 3y + z s.t. y + z >= 2.5, y integer, z continuous:
	// y=0 -> z=2.5 obj 2.5; y=1 -> z=1.5 obj 4.5. Best 2.5.
	p := lp.NewProblem()
	y := p.AddVar("y", 3)
	z := p.AddVar("z", 1)
	p.AddConstraint(lp.GE, 2.5, lp.Term{Var: y, Coeff: 1}, lp.Term{Var: z, Coeff: 1})
	res, err := Solve(p, []int{y}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2.5) > 1e-9 {
		t.Errorf("objective = %v, want 2.5", res.Objective)
	}
	if math.Abs(res.X[y]) > 1e-9 {
		t.Errorf("y = %v, want 0", res.X[y])
	}
}

// TestRandomILPAgainstEnumeration cross-checks small random integer
// programs against brute-force enumeration over a box.
func TestRandomILPAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		nv := 2 + rng.Intn(3)
		p := lp.NewProblem()
		costs := make([]float64, nv)
		vars := make([]int, nv)
		for v := 0; v < nv; v++ {
			costs[v] = float64(rng.Intn(7) - 3)
			vars[v] = p.AddVar("x", costs[v])
		}
		// Box: x_v <= 3 keeps enumeration tiny and the ILP bounded.
		for _, v := range vars {
			p.AddConstraint(lp.LE, 3, lp.Term{Var: v, Coeff: 1})
		}
		nc := 1 + rng.Intn(3)
		type rowSpec struct {
			coeff []float64
			rhs   float64
		}
		var rows []rowSpec
		for c := 0; c < nc; c++ {
			spec := rowSpec{coeff: make([]float64, nv)}
			var terms []lp.Term
			for v := 0; v < nv; v++ {
				spec.coeff[v] = float64(rng.Intn(4))
				if spec.coeff[v] != 0 {
					terms = append(terms, lp.Term{Var: vars[v], Coeff: spec.coeff[v]})
				}
			}
			spec.rhs = float64(rng.Intn(10))
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(lp.LE, spec.rhs, terms...)
			rows = append(rows, spec)
		}
		res, err := Solve(p, vars, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over {0..3}^nv.
		bestObj := math.Inf(1)
		found := false
		var walk func(v int, x []float64)
		walk = func(v int, x []float64) {
			if v == nv {
				for _, r := range rows {
					lhs := 0.0
					for k := range x {
						lhs += r.coeff[k] * x[k]
					}
					if lhs > r.rhs+1e-9 {
						return
					}
				}
				obj := 0.0
				for k := range x {
					obj += costs[k] * x[k]
				}
				if obj < bestObj {
					bestObj = obj
					found = true
				}
				return
			}
			for val := 0; val <= 3; val++ {
				x[v] = float64(val)
				walk(v+1, x)
			}
		}
		walk(0, make([]float64, nv))
		if !found {
			if res.Found {
				t.Fatalf("trial %d: ILP found a solution where enumeration found none", trial)
			}
			continue
		}
		if !res.Found {
			t.Fatalf("trial %d: ILP missed the feasible optimum %v", trial, bestObj)
		}
		if math.Abs(res.Objective-bestObj) > 1e-6 {
			t.Errorf("trial %d: ILP objective %v != brute force %v", trial, res.Objective, bestObj)
		}
	}
}

func TestBadIntVar(t *testing.T) {
	p := lp.NewProblem()
	p.AddVar("x", 1)
	if _, err := Solve(p, []int{5}, Options{}); err == nil {
		t.Error("out-of-range integer variable accepted")
	}
}
