// Package ilp implements a small branch-and-bound integer programming
// layer over calib/internal/lp. Its purpose in this reproduction is to
// solve the *integer* version of the TISE relaxation exactly, giving
// (a) an optimal-TISE oracle independent of the combinatorial exact
// solver and (b) the measured integrality gap of the paper's LP — the
// quantity the rounding step's factor 2 (Lemma 7) is paying for.
//
// The solver is a classic LP-based branch and bound: solve the LP
// relaxation, pick a variable required to be integral whose value is
// fractional, branch on floor/ceil bounds (encoded as extra rows), and
// bound subtrees by the LP optimum. Designed for small problems.
package ilp

import (
	"fmt"
	"math"

	"calib/internal/lp"
)

// Options configures Solve.
type Options struct {
	// MaxNodes caps the branch-and-bound tree (default 20000).
	MaxNodes int
	// Tol is the integrality tolerance (default 1e-6).
	Tol float64
}

// Result is the outcome of Solve.
type Result struct {
	// Status is Optimal when an optimal integer solution was proven,
	// Infeasible when no integer solution exists, IterLimit when the
	// node cap was hit (Objective/X then hold the best found, if any).
	Status lp.Status
	// Objective and X describe the best integer solution found.
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// Found reports whether any integer solution was found.
	Found bool
}

// branch is one pending subproblem: a set of variable bounds encoded
// as constraint rows appended to the base problem.
type bound struct {
	v     int
	upper bool // x_v <= val (else x_v >= val)
	val   float64
}

// Solve minimizes p subject to the additional requirement that every
// variable in intVars takes an integer value.
func Solve(p *lp.Problem, intVars []int, opts Options) (*Result, error) {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 20000
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-6
	}
	res := &Result{Status: lp.Infeasible, Objective: math.Inf(1)}
	isInt := make(map[int]bool, len(intVars))
	for _, v := range intVars {
		if v < 0 || v >= p.NumVars() {
			return nil, fmt.Errorf("ilp: integer variable %d out of range", v)
		}
		isInt[v] = true
	}

	// Depth-first stack of bound sets.
	type node struct{ bounds []bound }
	stack := []node{{}}
	for len(stack) > 0 && res.Nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		prob := clone(p, nd.bounds)
		// Branching bounds are singleton rows, which presolve converts
		// into fixings/reductions before the simplex runs.
		sol, err := lp.SolvePresolved(prob)
		if err != nil {
			return nil, err
		}
		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status != lp.Optimal {
			// Numerical trouble in a subproblem: treat as exhausted.
			continue
		}
		if sol.Objective >= res.Objective-tol {
			continue // bounded by incumbent
		}
		// Find the most fractional integer variable.
		branchVar, worst := -1, tol
		for _, v := range intVars {
			f := sol.X[v] - math.Floor(sol.X[v])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst, branchVar = frac, v
			}
		}
		if branchVar < 0 {
			// Integer solution (round off numerical fuzz).
			x := append([]float64(nil), sol.X...)
			obj := 0.0
			for v := range x {
				if isInt[v] {
					x[v] = math.Round(x[v])
				}
			}
			// Recompute the objective from the rounded point to avoid
			// drift.
			obj = objectiveOf(p, x)
			if obj < res.Objective {
				res.Objective = obj
				res.X = x
				res.Found = true
			}
			continue
		}
		fl := math.Floor(sol.X[branchVar])
		// Explore the "down" branch first (DFS order: push up then
		// down so down pops first) — down tends to reach integer
		// calibration profiles sooner.
		stack = append(stack, node{bounds: append(append([]bound(nil), nd.bounds...), bound{branchVar, false, fl + 1})})
		stack = append(stack, node{bounds: append(append([]bound(nil), nd.bounds...), bound{branchVar, true, fl})})
	}
	if res.Nodes >= maxNodes {
		res.Status = lp.IterLimit
	} else if res.Found {
		res.Status = lp.Optimal
	}
	return res, nil
}

// clone rebuilds p plus the branching bounds as fresh constraint rows.
func clone(p *lp.Problem, bounds []bound) *lp.Problem {
	out := p.Copy()
	for _, b := range bounds {
		if b.upper {
			out.AddConstraint(lp.LE, b.val, lp.Term{Var: b.v, Coeff: 1})
		} else {
			out.AddConstraint(lp.GE, b.val, lp.Term{Var: b.v, Coeff: 1})
		}
	}
	return out
}

// objectiveOf evaluates p's objective at x.
func objectiveOf(p *lp.Problem, x []float64) float64 {
	obj := 0.0
	for v := 0; v < p.NumVars(); v++ {
		obj += p.Obj(v) * x[v]
	}
	return obj
}
