package batch_test

import (
	"fmt"
	"math/rand"

	"calib/internal/batch"
	"calib/internal/workload"
)

// Example compares the standard policy set over two instances with a
// worker pool.
func Example() {
	rng := rand.New(rand.NewSource(7))
	var items []batch.Item
	for i := 0; i < 2; i++ {
		inst, _ := workload.Mixed(rng, 8, 1, 10, 0.5)
		items = append(items, batch.Item{Name: fmt.Sprintf("inst%d", i), Instance: inst})
	}
	rep := batch.Run(items, batch.DefaultPolicies(), 4)
	fmt.Println("rows:", len(rep.Rows))
	best := rep.Best()
	fmt.Println("winner for inst0:", best["inst0"].Policy)
	// Output:
	// rows: 12
	// winner for inst0: paper+improve
}
