package batch

import (
	"math/rand"
	"reflect"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

func testItems(t *testing.T, n int) []Item {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var items []Item
	for i := 0; i < n; i++ {
		inst, _ := workload.Mixed(rng, 10, 1, 10, 0.5)
		items = append(items, Item{Name: string(rune('a' + i)), Instance: inst})
	}
	return items
}

func TestRunProducesAllRows(t *testing.T) {
	items := testItems(t, 3)
	pols := DefaultPolicies()
	rep := Run(items, pols, 4)
	if len(rep.Rows) != len(items)*len(pols) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(items)*len(pols))
	}
	for _, row := range rep.Rows {
		if row.Err != "" {
			// naive-grid may legitimately fail on tight instances; all
			// other policies must succeed.
			if row.Policy != "naive-grid" {
				t.Errorf("%s/%s failed: %s", row.Item, row.Policy, row.Err)
			}
			continue
		}
		if row.Calibrations < row.LowerBound {
			t.Errorf("%s/%s: calibrations %d below lower bound %d",
				row.Item, row.Policy, row.Calibrations, row.LowerBound)
		}
		if row.Utilization <= 0 || row.Utilization > 1 {
			t.Errorf("%s/%s: utilization %v out of range", row.Item, row.Policy, row.Utilization)
		}
	}
}

// TestRunDeterministicAcrossWorkers: worker count must not change
// results or ordering.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	items := testItems(t, 3)
	pols := DefaultPolicies()
	a := Run(items, pols, 1)
	b := Run(items, pols, 8)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row count differs")
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		ra.Millis, rb.Millis = 0, 0 // timing may differ
		if !reflect.DeepEqual(ra, rb) {
			t.Errorf("row %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestBestPicksMinimum(t *testing.T) {
	items := testItems(t, 2)
	rep := Run(items, DefaultPolicies(), 2)
	best := rep.Best()
	for item, row := range best {
		for _, other := range rep.Rows {
			if other.Item == item && other.Err == "" && other.Calibrations < row.Calibrations {
				t.Errorf("best for %s is %d but %s achieved %d", item, row.Calibrations, other.Policy, other.Calibrations)
			}
		}
	}
}

func TestRunRecordsErrors(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 10, 10)
	in.AddJob(0, 10, 10) // needs 2 machines
	pols := []Policy{{
		Name: "budget-1",
		Solve: func(inst *ise.Instance) (*ise.Schedule, error) {
			return nil, errTest
		},
	}}
	rep := Run([]Item{{Name: "x", Instance: in}}, pols, 1)
	if rep.Rows[0].Err == "" {
		t.Error("error not recorded")
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "boom" }

func TestRunRejectsInfeasibleSchedules(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 5)
	pols := []Policy{{
		Name: "broken",
		Solve: func(inst *ise.Instance) (*ise.Schedule, error) {
			s := ise.NewSchedule(1)
			s.Place(0, 0, 0) // no calibration: infeasible
			return s, nil
		},
	}}
	rep := Run([]Item{{Name: "x", Instance: in}}, pols, 1)
	if rep.Rows[0].Err == "" {
		t.Error("infeasible schedule accepted by batch runner")
	}
}
