// Package batch evaluates solver policies over collections of ISE
// instances with a worker pool — the bulk-evaluation layer behind
// cmd/isebatch. Results are deterministic regardless of worker count:
// rows come back in (instance, policy) order.
package batch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"calib/internal/bounds"
	"calib/internal/core"
	"calib/internal/fault"
	"calib/internal/heur"
	"calib/internal/improve"
	"calib/internal/ise"
	"calib/internal/obs"
	"calib/internal/replay"
	"calib/internal/robust"
	"calib/internal/unitise"
)

// Policy is a named solver configuration.
type Policy struct {
	Name string
	// Solve produces a schedule for the instance (or an error, which
	// is recorded per row rather than aborting the batch).
	Solve func(*ise.Instance) (*ise.Schedule, error)
}

// Limits bounds each individual policy solve of a batch: a fresh
// robust.Control (wall clock and/or work budget) is built per solve,
// so one pathological instance cannot eat the whole batch's time. The
// zero value means unlimited.
type Limits struct {
	// Timeout is the wall-clock cap per solve (0 = none).
	Timeout time.Duration
	// Budget is the work cap per solve in solver units (0 = none).
	Budget int64
	// Metrics receives the robust_* trip counters (nil = process
	// default).
	Metrics *obs.Registry
	// Fault, when non-nil, arms deterministic fault injection in the
	// core-pipeline policies (see internal/fault); nil disables it at
	// zero cost.
	Fault *fault.Injector
}

// control builds a per-solve control; both returns are no-ops for the
// zero Limits.
func (l Limits) control() (*robust.Control, context.CancelFunc) {
	if l.Timeout <= 0 && l.Budget <= 0 {
		return nil, func() {}
	}
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if l.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, l.Timeout)
	}
	met := l.Metrics
	if met == nil {
		met = obs.Default()
	}
	return robust.NewControl(ctx, l.Budget, met), cancel
}

// DefaultPolicies returns the standard comparison set: the paper's
// pipeline (paper-faithful and trimmed+compacted), the lazy heuristic,
// and the always-calibrated straw man, with no per-solve limits.
func DefaultPolicies() []Policy { return DefaultPoliciesCtl(Limits{}) }

// DefaultPoliciesCtl is DefaultPolicies under per-solve limits: the
// LP-pipeline policies abort (an error row) when a limit trips, and a
// "robust" policy — the exact->LP->heuristic degradation ladder — is
// appended, which instead degrades and still answers.
func DefaultPoliciesCtl(l Limits) []Policy {
	return []Policy{
		{"paper", func(inst *ise.Instance) (*ise.Schedule, error) {
			ctl, cancel := l.control()
			defer cancel()
			r, err := core.Solve(inst, core.Options{Control: ctl, Fault: l.Fault})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}},
		{"paper+trim+compact", func(inst *ise.Instance) (*ise.Schedule, error) {
			ctl, cancel := l.control()
			defer cancel()
			r, err := core.Solve(inst, core.Options{TrimIdle: true, Control: ctl, Fault: l.Fault})
			if err != nil {
				return nil, err
			}
			return ise.Compact(inst, r.Schedule)
		}},
		{"paper+improve", func(inst *ise.Instance) (*ise.Schedule, error) {
			ctl, cancel := l.control()
			defer cancel()
			r, err := core.Solve(inst, core.Options{Control: ctl, Fault: l.Fault})
			if err != nil {
				return nil, err
			}
			ir, err := improve.Run(inst, r.Schedule)
			if err != nil {
				return nil, err
			}
			return ise.Compact(inst, ir.Schedule)
		}},
		{"robust", func(inst *ise.Instance) (*ise.Schedule, error) {
			ctl, cancel := l.control()
			defer cancel()
			r, err := core.SolveRobust(inst, core.RobustOptions{Options: core.Options{Control: ctl, Fault: l.Fault}})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}},
		{"lazy", func(inst *ise.Instance) (*ise.Schedule, error) {
			return heur.Lazy(inst, heur.Options{})
		}},
		{"naive-grid", unitise.NaiveGrid},
	}
}

// Item is one named instance of a batch.
type Item struct {
	Name     string
	Instance *ise.Instance
}

// Row is the outcome of one (instance, policy) evaluation.
type Row struct {
	Item         string
	Policy       string
	N            int
	Calibrations int
	Machines     int
	LowerBound   int
	Utilization  float64
	Millis       float64
	Err          string
	// Deduped marks a row replayed from a canonical twin's solve
	// (RunDedup) rather than solved itself; Millis is the twin's.
	Deduped bool
}

// Report is a completed batch.
type Report struct {
	Rows []Row
}

// Run evaluates every policy on every item using `workers` goroutines
// (minimum 1). Every produced schedule is validated and replayed; an
// invalid schedule is reported as an error row, never silently
// accepted.
func Run(items []Item, policies []Policy, workers int) *Report {
	if workers < 1 {
		workers = 1
	}
	type task struct{ item, pol int }
	tasks := make(chan task)
	rows := make([]Row, len(items)*len(policies))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				rows[tk.item*len(policies)+tk.pol] = solveRow(items[tk.item], policies[tk.pol])
			}
		}()
	}
	for i := range items {
		for p := range policies {
			tasks <- task{i, p}
		}
	}
	close(tasks)
	wg.Wait()
	return &Report{Rows: rows}
}

// solveRow evaluates one (instance, policy) pair: solve, validate,
// replay, time. Errors and infeasibility are recorded in the row, not
// returned — a batch always finishes.
func solveRow(it Item, pol Policy) Row {
	row := Row{Item: it.Name, Policy: pol.Name, N: it.Instance.N(),
		LowerBound: bounds.Calibrations(it.Instance)}
	t0 := time.Now()
	sched, err := pol.Solve(it.Instance)
	row.Millis = float64(time.Since(t0).Microseconds()) / 1000
	switch {
	case err != nil:
		row.Err = err.Error()
	default:
		if verr := ise.Validate(it.Instance, sched); verr != nil {
			row.Err = fmt.Sprintf("INFEASIBLE: %v", verr)
			break
		}
		rep := replay.Replay(it.Instance, sched)
		row.Calibrations = sched.NumCalibrations()
		row.Machines = sched.MachinesUsed()
		row.Utilization = rep.Utilization
	}
	return row
}

// Best returns, per item, the policy with the fewest calibrations
// (ignoring errored rows); ties keep the earlier policy.
func (r *Report) Best() map[string]Row {
	best := map[string]Row{}
	for _, row := range r.Rows {
		if row.Err != "" {
			continue
		}
		cur, ok := best[row.Item]
		if !ok || row.Calibrations < cur.Calibrations {
			best[row.Item] = row
		}
	}
	return best
}
