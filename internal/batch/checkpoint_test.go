package batch

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"calib/internal/heur"
	"calib/internal/ise"
)

func ckItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		inst := ise.NewInstance(10, 1)
		inst.AddJob(ise.Time(i), ise.Time(i)+40, 5)
		inst.AddJob(ise.Time(i)+30, ise.Time(i)+70, 8)
		items[i] = Item{Name: fmt.Sprintf("inst-%02d", i), Instance: inst}
	}
	return items
}

// countingPolicies returns two policies that count invocations, so
// tests can assert exactly which rows were re-solved on resume.
func countingPolicies(calls *atomic.Int64) []Policy {
	solve := func(inst *ise.Instance) (*ise.Schedule, error) {
		calls.Add(1)
		return heur.Lazy(inst, heur.Options{})
	}
	return []Policy{{Name: "a", Solve: solve}, {Name: "b", Solve: solve}}
}

// zeroMillis strips the one nondeterministic column so reports can be
// compared row-for-row.
func zeroMillis(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	for i := range out {
		out[i].Millis = 0
	}
	return out
}

func TestCheckpointResumeSkipsCompletedRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	items := ckItems(6)
	var calls1 atomic.Int64
	pols := countingPolicies(&calls1)

	// First run: interrupt after 7 of 12 rows by checkpointing a prefix
	// manually (simulating the rows that had finished when the process
	// was killed).
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunCheckpoint(items, pols, 3, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if got := calls1.Load(); got != 12 {
		t.Fatalf("first run solved %d rows, want 12", got)
	}

	// Resume with everything checkpointed: zero solves, and the report
	// is byte-identical to the first run — Millis included, because
	// checkpointed rows replay verbatim.
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 12 || ck2.Skipped != 0 {
		t.Fatalf("reopened checkpoint: len %d, skipped %d", ck2.Len(), ck2.Skipped)
	}
	var calls2 atomic.Int64
	resumed, err := RunCheckpoint(items, countingPolicies(&calls2), 3, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Fatalf("resume re-solved %d rows, want 0", calls2.Load())
	}
	if !reflect.DeepEqual(full.Rows, resumed.Rows) {
		t.Fatal("resumed report differs from original")
	}
}

func TestCheckpointPartialResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	items := ckItems(4)
	var calls atomic.Int64
	pols := countingPolicies(&calls)

	// Checkpoint only the first 3 rows, as a killed run would have.
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	baseline := Run(items, pols, 1)
	for _, row := range baseline.Rows[:3] {
		if err := ck.Record(row); err != nil {
			t.Fatal(err)
		}
	}
	ck.Close()
	calls.Store(0)

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	resumed, err := RunCheckpoint(items, pols, 2, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("resume solved %d rows, want the 5 missing ones", got)
	}
	// Row-for-row identical once the nondeterministic timing column is
	// ignored; the 3 resumed rows keep even their original Millis.
	if !reflect.DeepEqual(zeroMillis(baseline.Rows), zeroMillis(resumed.Rows)) {
		t.Fatal("resumed rows differ from an uninterrupted run")
	}
	for i, row := range resumed.Rows[:3] {
		if row.Millis != baseline.Rows[i].Millis {
			t.Fatalf("row %d lost its checkpointed timing", i)
		}
	}
	// After the resume the checkpoint is complete.
	if ck2.Len() != len(items)*len(pols) {
		t.Fatalf("checkpoint has %d rows after resume", ck2.Len())
	}
}

// TestCheckpointTornTail: a kill mid-Record leaves a torn last line;
// reopening keeps every intact row and counts the damage.
func TestCheckpointTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	items := ckItems(3)
	var calls atomic.Int64
	pols := countingPolicies(&calls)
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCheckpoint(items, pols, 1, ck); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last line in half — the classic SIGKILL-mid-write shape.
	torn := raw[:len(raw)-20]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 5 || ck2.Skipped != 1 {
		t.Fatalf("torn checkpoint: len %d skipped %d, want 5/1", ck2.Len(), ck2.Skipped)
	}
	// Resume re-solves only the torn row.
	calls.Store(0)
	if _, err := RunCheckpoint(items, pols, 1, ck2); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("resume after torn tail solved %d rows, want 1", calls.Load())
	}
}

// TestCheckpointCorruptLine: a line whose payload was damaged in place
// fails its CRC and is re-solved, never trusted.
func TestCheckpointCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	items := ckItems(2)
	var calls atomic.Int64
	pols := countingPolicies(&calls)
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCheckpoint(items, pols, 1, ck); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first line's row payload (past the CRC
	// field) without breaking the JSON framing.
	idx := 40
	switch raw[idx] {
	case '"', '\\', '{', '}':
		idx++
	}
	raw[idx] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Skipped == 0 {
		t.Fatal("damaged line loaded without tripping the CRC")
	}
}

func TestRunCheckpointNilFallsBackToRun(t *testing.T) {
	items := ckItems(2)
	var calls atomic.Int64
	rep, err := RunCheckpoint(items, countingPolicies(&calls), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 || calls.Load() != 4 {
		t.Fatalf("nil-checkpoint run: %d rows, %d calls", len(rep.Rows), calls.Load())
	}
}

// TestCheckpointRecordErrors: error rows checkpoint and resume like
// any other — a failed solve is a completed evaluation.
func TestCheckpointRecordErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	items := ckItems(1)
	var calls atomic.Int64
	pols := []Policy{{Name: "boom", Solve: func(*ise.Instance) (*ise.Schedule, error) {
		calls.Add(1)
		return nil, errors.New("engine exploded")
	}}}
	ck, _ := OpenCheckpoint(path)
	rep, err := RunCheckpoint(items, pols, 1, ck)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if rep.Rows[0].Err == "" {
		t.Fatal("error row lost its error")
	}
	ck2, _ := OpenCheckpoint(path)
	defer ck2.Close()
	calls.Store(0)
	rep2, err := RunCheckpoint(items, pols, 1, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 || rep2.Rows[0].Err != rep.Rows[0].Err {
		t.Fatalf("error row was re-solved (%d calls) or changed: %+v", calls.Load(), rep2.Rows[0])
	}
}
