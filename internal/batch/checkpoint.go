package batch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Checkpointing: the batch layer's crash-safe resume path. Every
// completed (instance, policy) row is appended to a JSONL checkpoint
// file — each line CRC-stamped and fsynced — as soon as it finishes,
// so a killed run loses at most the rows that were still solving.
// Reopening the same file resumes the batch: checkpointed rows are
// replayed verbatim (including their original timings) and only the
// missing work is solved, making the resumed report row-for-row
// identical to an uninterrupted run up to the nondeterministic Millis
// of the freshly solved rows.
//
// File format: one JSON object per line,
//
//	{"crc": <IEEE CRC-32 of the row bytes>, "row": <Row JSON>}
//
// A torn tail (the line being written when the process died) fails
// JSON parsing or the CRC and is skipped; everything before it loads.

// ckLine is one checkpoint record on the wire.
type ckLine struct {
	CRC uint32          `json:"crc"`
	Row json.RawMessage `json:"row"`
}

// Checkpoint is an append-only row journal; create with
// OpenCheckpoint. Safe for concurrent Record calls.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seen map[string]Row
	// Skipped counts damaged lines discarded while loading (torn tail,
	// bad CRC, malformed JSON).
	Skipped int
}

func ckKey(item, policy string) string { return item + "\x00" + policy }

// OpenCheckpoint opens (creating if needed) the checkpoint at path and
// loads every intact row already in it. Damaged lines are counted in
// Skipped and ignored — a checkpoint is an accelerant, never a way to
// fail a batch.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{f: f, seen: map[string]Row{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var line ckLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			ck.Skipped++
			continue
		}
		if crc32.ChecksumIEEE(line.Row) != line.CRC {
			ck.Skipped++
			continue
		}
		var row Row
		if err := json.Unmarshal(line.Row, &row); err != nil {
			ck.Skipped++
			continue
		}
		ck.seen[ckKey(row.Item, row.Policy)] = row
	}
	if err := sc.Err(); err != nil {
		// An unterminated giant line or read error: treat like a torn
		// tail — keep what loaded.
		ck.Skipped++
	}
	// Append after whatever we just read (including any torn tail; new
	// lines start fresh after it and their CRCs keep them readable).
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	ck.w = bufio.NewWriter(f)
	return ck, nil
}

// Len returns the number of rows loaded from the file plus those
// recorded since.
func (ck *Checkpoint) Len() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.seen)
}

// Done returns the checkpointed row for (item, policy), if present.
func (ck *Checkpoint) Done(item, policy string) (Row, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	row, ok := ck.seen[ckKey(item, policy)]
	return row, ok
}

// Record appends row to the journal and syncs it to disk before
// returning, so a row that Record accepted survives any later kill.
func (ck *Checkpoint) Record(row Row) error {
	raw, err := json.Marshal(row)
	if err != nil {
		return err
	}
	line, err := json.Marshal(ckLine{CRC: crc32.ChecksumIEEE(raw), Row: raw})
	if err != nil {
		return err
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if _, err := ck.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := ck.w.Flush(); err != nil {
		return err
	}
	if err := ck.f.Sync(); err != nil {
		return err
	}
	ck.seen[ckKey(row.Item, row.Policy)] = row
	return nil
}

// Close flushes and closes the journal file.
func (ck *Checkpoint) Close() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if err := ck.w.Flush(); err != nil {
		ck.f.Close()
		return err
	}
	return ck.f.Close()
}

// RunCheckpoint is Run with crash-safe resume: rows already in ck are
// replayed verbatim (their original result and timing, no re-solve)
// and every freshly solved row is recorded — and fsynced — the moment
// it completes. ck == nil degrades to plain Run. Row order and
// content match an uninterrupted Run exactly, except that Millis of
// re-solved rows reflects this run's clock.
func RunCheckpoint(items []Item, policies []Policy, workers int, ck *Checkpoint) (*Report, error) {
	if ck == nil {
		return Run(items, policies, workers), nil
	}
	if workers < 1 {
		workers = 1
	}
	type task struct{ item, pol int }
	rows := make([]Row, len(items)*len(policies))
	var pending []task
	for i := range items {
		for p := range policies {
			if row, ok := ck.Done(items[i].Name, policies[p].Name); ok {
				rows[i*len(policies)+p] = row
				continue
			}
			pending = append(pending, task{i, p})
		}
	}
	if len(pending) == 0 {
		return &Report{Rows: rows}, nil
	}
	tasks := make(chan task, len(pending))
	for _, tk := range pending {
		tasks <- tk
	}
	close(tasks)
	var (
		wg       sync.WaitGroup
		recErrMu sync.Mutex
		recErr   error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				row := solveRow(items[tk.item], policies[tk.pol])
				rows[tk.item*len(policies)+tk.pol] = row
				if err := ck.Record(row); err != nil {
					recErrMu.Lock()
					if recErr == nil {
						recErr = fmt.Errorf("checkpointing %s/%s: %w", row.Item, row.Policy, err)
					}
					recErrMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return &Report{Rows: rows}, recErr
}
