package batch_test

import (
	"sync/atomic"
	"testing"

	"calib/internal/batch"
	"calib/internal/heur"
	"calib/internal/ise"
	"calib/internal/obs"
)

// dedupItems builds a duplicate-heavy batch: 3 genuinely distinct
// instances, each present in 4 disguises (identical, shifted, permuted,
// shifted+permuted) — 12 items, 3 unique canonical forms.
func dedupItems(t *testing.T) []batch.Item {
	t.Helper()
	bases := make([]*ise.Instance, 3)
	for b := range bases {
		inst := ise.NewInstance(10, 2)
		for j := 0; j < 5; j++ {
			off := ise.Time(j * 6)
			inst.AddJob(off, off+20+ise.Time(3*b), 2+ise.Time((j+b)%4))
		}
		bases[b] = inst
	}
	permuted := func(src *ise.Instance) *ise.Instance {
		out := ise.NewInstance(src.T, src.M)
		for j := src.N() - 1; j >= 0; j-- {
			jb := src.Jobs[j]
			out.AddJob(jb.Release, jb.Deadline, jb.Processing)
		}
		return out
	}
	var items []batch.Item
	for b, base := range bases {
		disguises := []*ise.Instance{
			base.Clone(),
			base.Shift(1000),
			permuted(base),
			permuted(base).Shift(250),
		}
		for d, inst := range disguises {
			items = append(items, batch.Item{
				Name:     string(rune('a'+b)) + "-" + string(rune('0'+d)),
				Instance: inst,
			})
		}
	}
	return items
}

// TestRunDedupSolvesOncePerUniqueInstance is the core dedup check:
// the solve count drops from items x policies to unique-keys x
// policies, while every row still validates in its own frame.
func TestRunDedupSolvesOncePerUniqueInstance(t *testing.T) {
	items := dedupItems(t)
	var solves atomic.Int64
	counting := []batch.Policy{{
		Name: "lazy",
		Solve: func(inst *ise.Instance) (*ise.Schedule, error) {
			solves.Add(1)
			return heur.Lazy(inst, heur.Options{})
		},
	}}

	reg := obs.NewRegistry()
	rep := batch.RunDedup(items, counting, 4, reg)

	if got, want := solves.Load(), int64(3); got != want {
		t.Fatalf("policy solved %d times for 12 items, want %d (one per unique canonical form)", got, want)
	}
	if len(rep.Rows) != len(items) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(items))
	}
	deduped := 0
	for i, row := range rep.Rows {
		if row.Err != "" {
			t.Fatalf("row %d (%s): %s", i, row.Item, row.Err)
		}
		if row.Item != items[i].Name {
			t.Fatalf("row %d out of order: %s", i, row.Item)
		}
		if row.Deduped {
			deduped++
		}
	}
	if deduped != 9 {
		t.Fatalf("deduped rows = %d, want 9 (12 items - 3 leaders)", deduped)
	}
	if got := reg.Counter(obs.MBatchDedup).Value(); got != 9 {
		t.Fatalf("batch_dedup_replays_total = %d, want 9", got)
	}
}

// TestRunDedupMatchesRunObjectives: for an order-insensitive check —
// feasibility and identical objective across disguises of the same
// base — dedup must agree with itself for every twin.
func TestRunDedupTwinsAgree(t *testing.T) {
	items := dedupItems(t)
	rep := batch.RunDedup(items, []batch.Policy{{
		Name: "lazy",
		Solve: func(inst *ise.Instance) (*ise.Schedule, error) {
			return heur.Lazy(inst, heur.Options{})
		},
	}}, 2, nil)

	// 4 consecutive rows per base; all must report the same objective,
	// since they replay one canonical solve.
	for b := 0; b < 3; b++ {
		want := rep.Rows[b*4].Calibrations
		for d := 1; d < 4; d++ {
			if got := rep.Rows[b*4+d].Calibrations; got != want {
				t.Errorf("base %d disguise %d: %d calibrations, leader had %d", b, d, got, want)
			}
		}
	}
}

// TestRunDedupNoDuplicates: on an all-unique batch RunDedup degrades
// to plain Run semantics — no replays, no Deduped rows.
func TestRunDedupNoDuplicates(t *testing.T) {
	var items []batch.Item
	for i := 0; i < 4; i++ {
		inst := ise.NewInstance(10, 1)
		inst.AddJob(0, 30+ise.Time(i), 4)
		items = append(items, batch.Item{Name: string(rune('a' + i)), Instance: inst})
	}
	reg := obs.NewRegistry()
	var solves atomic.Int64
	rep := batch.RunDedup(items, []batch.Policy{{
		Name: "lazy",
		Solve: func(inst *ise.Instance) (*ise.Schedule, error) {
			solves.Add(1)
			return heur.Lazy(inst, heur.Options{})
		},
	}}, 3, reg)

	if got := solves.Load(); got != 4 {
		t.Fatalf("solves = %d, want 4", got)
	}
	for _, row := range rep.Rows {
		if row.Deduped || row.Err != "" {
			t.Fatalf("unexpected row: %+v", row)
		}
	}
	if got := reg.Counter(obs.MBatchDedup).Value(); got != 0 {
		t.Fatalf("batch_dedup_replays_total = %d, want 0", got)
	}
}
