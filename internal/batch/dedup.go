package batch

import (
	"fmt"
	"time"

	"calib/internal/bounds"
	"calib/internal/canon"
	"calib/internal/ise"
	"calib/internal/obs"
	"calib/internal/replay"
)

// RunDedup is Run with canonical deduplication: items that are
// equivalent up to job order and a uniform time shift (equal
// internal/canon keys) are solved once per policy, and the resulting
// schedule is replayed into every twin's own time frame and job IDs.
// Duplicate-heavy batches — parameter sweeps, sliding-window extracts,
// re-runs over overlapping corpora — pay for their unique instances
// only.
//
// Rows still come back in (instance, policy) order and every row is
// validated against its own original instance, so a replayed twin can
// never be silently wrong. Replayed rows carry Deduped=true and the
// leader's solve time. met counts replays on batch_dedup_replays_total
// (nil = process default).
func RunDedup(items []Item, policies []Policy, workers int, met *obs.Registry) *Report {
	if met == nil {
		met = obs.Default()
	}
	replays := met.Counter(obs.MBatchDedup)

	// Group items by canonical key. The leader (first item of a group)
	// is solved; the rest replay its canonical-frame schedule.
	canons := make([]*canon.Canonical, len(items))
	groups := map[uint64][]int{}
	order := make([]uint64, 0, len(items)) // first-seen key order, for determinism
	for i, it := range items {
		canons[i] = canon.Canonicalize(it.Instance)
		key := canons[i].Key
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}

	if workers < 1 {
		workers = 1
	}
	type task struct {
		key uint64
		pol int
	}
	rows := make([]Row, len(items)*len(policies))
	tasks := make(chan task)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for tk := range tasks {
				members := groups[tk.key]
				leader := members[0]
				pol := policies[tk.pol]

				// Solve the canonical form once. Policies receive the
				// canonical instance, so even order-sensitive heuristics
				// answer identically for every twin.
				t0 := time.Now()
				sched, err := pol.Solve(canons[leader].Instance)
				millis := float64(time.Since(t0).Microseconds()) / 1000

				for _, i := range members {
					row := Row{Item: items[i].Name, Policy: pol.Name, N: items[i].Instance.N(),
						LowerBound: bounds.Calibrations(items[i].Instance),
						Millis:     millis, Deduped: i != leader}
					switch {
					case err != nil:
						row.Err = err.Error()
					default:
						own := canons[i].Decanonicalize(sched)
						if verr := ise.Validate(items[i].Instance, own); verr != nil {
							row.Err = fmt.Sprintf("INFEASIBLE: %v", verr)
							break
						}
						rep := replay.Replay(items[i].Instance, own)
						row.Calibrations = own.NumCalibrations()
						row.Machines = own.MachinesUsed()
						row.Utilization = rep.Utilization
					}
					if row.Deduped {
						replays.Inc()
					}
					rows[i*len(policies)+tk.pol] = row
				}
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for _, key := range order {
			for p := range policies {
				tasks <- task{key, p}
			}
		}
		close(tasks)
	}()
	for n := 0; n < len(order)*len(policies); n++ {
		<-done
	}
	return &Report{Rows: rows}
}
