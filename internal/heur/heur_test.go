package heur_test

import (
	"math/rand"
	"testing"

	"calib/internal/exact"
	"calib/internal/heur"
	"calib/internal/ise"
	"calib/internal/workload"
)

func TestLazyDelaysCalibration(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 100, 5)
	in.AddJob(90, 100, 5)
	s, err := heur.Lazy(in, heur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, s); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if s.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1 (share the late calibration)", s.NumCalibrations())
	}
}

func TestLazyPacksExistingCalibrations(t *testing.T) {
	in := ise.NewInstance(10, 1)
	// Three jobs, total work 9 <= T, overlapping windows.
	in.AddJob(0, 30, 3)
	in.AddJob(0, 30, 3)
	in.AddJob(0, 30, 3)
	s, err := heur.Lazy(in, heur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, s); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if s.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1", s.NumCalibrations())
	}
}

func TestLazyMachineBudget(t *testing.T) {
	in := ise.NewInstance(10, 1)
	// Two full-size jobs with identical tight windows need 2 machines.
	in.AddJob(0, 10, 10)
	in.AddJob(0, 10, 10)
	if _, err := heur.Lazy(in, heur.Options{MaxMachines: 1}); err == nil {
		t.Error("budget violation not reported")
	}
	s, err := heur.Lazy(in, heur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, s); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if s.MachinesUsed() != 2 {
		t.Errorf("machines = %d, want 2", s.MachinesUsed())
	}
}

// TestLazyFeasibleOnRandom checks feasibility across workload families
// and measures the ratio against the exact oracle on small instances.
func TestLazyFeasibleOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	worst := 0.0
	for trial := 0; trial < 40; trial++ {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + rng.Intn(2),
			T:                      8,
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.AnyWindow,
		})
		s, err := heur.Lazy(inst, heur.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(inst, s); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		if inst.N() <= 7 && inst.N() > 0 {
			opt, err := exact.Solve(inst, exact.Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			r := float64(s.NumCalibrations()) / float64(opt.Calibrations)
			if r > worst {
				worst = r
			}
			if r < 1 {
				t.Errorf("trial %d: heuristic %d beats 'optimal' %d — oracle bug!",
					trial, s.NumCalibrations(), opt.Calibrations)
			}
		}
	}
	t.Logf("worst lazy/OPT ratio observed: %.2f", worst)
}

func TestLazyUnitMatchesSpirit(t *testing.T) {
	// On unit jobs the general heuristic should stay close to the
	// specialised lazy binning (both delay calibrations).
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1,
			T:                      6,
			CalibrationsPerMachine: 2,
			UnitJobs:               true,
			Fill:                   0.5,
			Window:                 workload.AnyWindow,
		})
		if inst.N() == 0 || inst.N() > 7 {
			continue
		}
		s, err := heur.Lazy(inst, heur.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(inst, s); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		opt, err := exact.Solve(inst, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.NumCalibrations() > 2*opt.Calibrations {
			t.Errorf("trial %d: lazy %d > 2*OPT %d on unit jobs",
				trial, s.NumCalibrations(), 2*opt.Calibrations)
		}
	}
}

func TestLazyEmpty(t *testing.T) {
	in := ise.NewInstance(10, 1)
	s, err := heur.Lazy(in, heur.Options{})
	if err != nil || s.NumCalibrations() != 0 {
		t.Errorf("empty: %v %+v", err, s)
	}
}
