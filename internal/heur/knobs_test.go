package heur_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calib/internal/heur"
	"calib/internal/ise"
	"calib/internal/workload"
)

// TestQuickAllKnobCombosFeasible: every (order, opening) configuration
// must produce feasible schedules on arbitrary planted instances.
func TestQuickAllKnobCombosFeasible(t *testing.T) {
	prop := func(seed int64, ordRaw, openRaw, mRaw, TRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + int(mRaw%3),
			T:                      ise.Time(3 + TRaw%12),
			CalibrationsPerMachine: 1 + rng.Intn(2),
			Window:                 workload.WindowKind(rng.Intn(3)),
		})
		s, err := heur.Lazy(inst, heur.Options{
			Order:   heur.Order(ordRaw % 3),
			Opening: heur.Opening(openRaw % 2),
		})
		if err != nil {
			return false
		}
		return ise.Validate(inst, s) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLazinessWinsWhenItMatters: the canonical sparse long-window case
// where eager opening provably pays double.
func TestLazinessWinsWhenItMatters(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 100, 5)
	in.AddJob(90, 100, 5)
	lazy, err := heur.Lazy(in, heur.Options{Opening: heur.LazyOpening})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := heur.Lazy(in, heur.Options{Opening: heur.EagerOpening})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.NumCalibrations() != 1 || eager.NumCalibrations() != 2 {
		t.Errorf("lazy %d (want 1), eager %d (want 2)",
			lazy.NumCalibrations(), eager.NumCalibrations())
	}
}

func TestKnobStrings(t *testing.T) {
	for _, o := range []heur.Order{heur.DeadlineOrder, heur.ReleaseOrder, heur.SlackOrder, heur.Order(9)} {
		if o.String() == "" {
			t.Errorf("empty Order string for %d", int(o))
		}
	}
	for _, o := range []heur.Opening{heur.LazyOpening, heur.EagerOpening, heur.Opening(9)} {
		if o.String() == "" {
			t.Errorf("empty Opening string for %d", int(o))
		}
	}
}
