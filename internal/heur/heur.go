// Package heur implements a practical greedy heuristic for the
// general ISE problem, beyond the paper's analysis: Lazy generalizes
// the lazy-binning idea of Bender et al. (2013) from unit jobs to
// arbitrary processing times. It carries no approximation guarantee —
// the experiments measure its quality against the exact oracle and
// the paper's algorithm — but it is fast, uses few machines, and is
// the solver a practitioner would reach for first.
package heur

import (
	"errors"
	"fmt"
	"sort"

	"calib/internal/ise"
)

// ErrInfeasible reports that the heuristic could not place a job
// within the machine budget. The instance itself may still be
// feasible; Lazy is a heuristic, not a decision procedure.
var ErrInfeasible = errors.New("heur: could not place every job within the machine budget")

// Order selects the job processing order of the greedy loop.
type Order int

// Job orders.
const (
	// DeadlineOrder (EDF) is the default and usually the best.
	DeadlineOrder Order = iota
	// ReleaseOrder processes jobs by release time.
	ReleaseOrder
	// SlackOrder processes the tightest jobs (d - r - p) first.
	SlackOrder
)

func (o Order) String() string {
	switch o {
	case DeadlineOrder:
		return "deadline"
	case ReleaseOrder:
		return "release"
	case SlackOrder:
		return "slack"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Opening selects where new calibrations are opened.
type Opening int

// Calibration opening policies.
const (
	// LazyOpening (default) opens at d_j - T: as late as useful, so
	// the calibration's tail serves later jobs.
	LazyOpening Opening = iota
	// EagerOpening opens at the job's release — the "calibrate when
	// work shows up" instinct; the ablation (T13) quantifies how much
	// it wastes.
	EagerOpening
)

func (o Opening) String() string {
	switch o {
	case LazyOpening:
		return "lazy"
	case EagerOpening:
		return "eager"
	default:
		return fmt.Sprintf("Opening(%d)", int(o))
	}
}

// Options configures Lazy.
type Options struct {
	// MaxMachines caps the machine count; 0 means grow as needed.
	MaxMachines int
	// Order is the job processing order (default DeadlineOrder).
	Order Order
	// Opening is the calibration opening policy (default LazyOpening).
	Opening Opening
}

// calibration is an open calibration with its occupied sub-intervals.
type calibration struct {
	start ise.Time
	runs  []run // sorted by start
}

type run struct {
	job        int
	start, end ise.Time
}

// machine is one machine's calibrations, sorted by start.
type machine struct {
	cals []*calibration
}

// Lazy schedules inst greedily: jobs in the configured order (default
// earliest deadline); each job is first fitted into the free space of
// an existing calibration; failing that, a new calibration is opened
// per the Opening policy (default: start d_j - T, pulled earlier only
// to avoid same-machine conflicts), so that the calibration covers the
// maximal usable span before the deadline and its head remains
// available to other jobs.
func Lazy(inst *ise.Instance, opts Options) (*ise.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, inst.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := inst.Jobs[order[a]], inst.Jobs[order[b]]
		var ka, kb ise.Time
		switch opts.Order {
		case ReleaseOrder:
			ka, kb = ja.Release, jb.Release
		case SlackOrder:
			ka, kb = ja.Slack(), jb.Slack()
		default:
			ka, kb = ja.Deadline, jb.Deadline
		}
		if ka != kb {
			return ka < kb
		}
		if ja.Deadline != jb.Deadline {
			return ja.Deadline < jb.Deadline
		}
		return ja.ID < jb.ID
	})
	var machines []*machine
	place := make(map[int]ise.Placement, inst.N())

	for _, id := range order {
		j := inst.Jobs[id]
		// 1) Try the free space of existing calibrations; prefer the
		// placement that starts latest (stay lazy, keep early space
		// for nothing — later space serves later jobs anyway, so any
		// fit avoids a new calibration; we pick the tightest fit by
		// latest feasible start).
		bestM, bestC := -1, -1
		var bestStart ise.Time
		for mi, m := range machines {
			for ci, c := range m.cals {
				if s, ok := fitInCalibration(inst.T, c, j); ok {
					if bestM < 0 || s > bestStart {
						bestM, bestC, bestStart = mi, ci, s
					}
				}
			}
		}
		if bestM >= 0 {
			c := machines[bestM].cals[bestC]
			insertRun(c, run{job: id, start: bestStart, end: bestStart + j.Processing})
			place[id] = ise.Placement{Job: id, Machine: bestM, Start: bestStart}
			continue
		}
		// 2) Open a new calibration. The laziest useful start is
		// d_j - T: the calibration then covers the maximal usable
		// prefix before the deadline, and the job sits at its latest
		// position inside, leaving the head of the calibration free
		// for other jobs. Any start in [r_j + p_j - T, d_j - p_j] can
		// host the job, so starts past d_j - T are kept as a fallback
		// when machine spacing blocks the preferred range.
		lo := j.Release + j.Processing - inst.T
		preferred := j.Deadline - inst.T
		if opts.Opening == EagerOpening {
			preferred = j.Release
		}
		fallbackHi := j.Deadline - j.Processing
		calM, calS := -1, ise.Time(0)
		for mi, m := range machines {
			if s, ok := latestCalStart(inst.T, m, lo, preferred); ok {
				if calM < 0 || s > calS {
					calM, calS = mi, s
				}
			}
		}
		if calM < 0 {
			for mi, m := range machines {
				if s, ok := latestCalStart(inst.T, m, lo, fallbackHi); ok {
					if calM < 0 || s > calS {
						calM, calS = mi, s
					}
				}
			}
		}
		if calM < 0 {
			if opts.MaxMachines > 0 && len(machines) >= opts.MaxMachines {
				return nil, fmt.Errorf("heur: %v: %w", j, ErrInfeasible)
			}
			machines = append(machines, &machine{})
			calM, calS = len(machines)-1, preferred
		}
		c := &calibration{start: calS}
		m := machines[calM]
		m.cals = append(m.cals, c)
		sort.Slice(m.cals, func(a, b int) bool { return m.cals[a].start < m.cals[b].start })
		// Latest feasible position within the calibration and window
		// (earliest under eager opening).
		var jobStart ise.Time
		if opts.Opening == EagerOpening {
			jobStart = calS
			if jobStart < j.Release {
				jobStart = j.Release
			}
		} else {
			jobStart = calS + inst.T
			if j.Deadline < jobStart {
				jobStart = j.Deadline
			}
			jobStart -= j.Processing
			if jobStart < j.Release {
				jobStart = j.Release
			}
		}
		insertRun(c, run{job: id, start: jobStart, end: jobStart + j.Processing})
		place[id] = ise.Placement{Job: id, Machine: calM, Start: jobStart}
	}

	out := ise.NewSchedule(maxInt(len(machines), 1))
	for mi, m := range machines {
		for _, c := range m.cals {
			out.Calibrate(mi, c.start)
		}
	}
	for id := 0; id < inst.N(); id++ {
		p := place[id]
		out.Place(p.Job, p.Machine, p.Start)
	}
	return out, nil
}

// fitInCalibration returns the latest feasible start for job j inside
// calibration c's free space, honoring the job's window.
func fitInCalibration(T ise.Time, c *calibration, j ise.Job) (ise.Time, bool) {
	lo := c.start
	if j.Release > lo {
		lo = j.Release
	}
	hi := c.start + T
	if j.Deadline < hi {
		hi = j.Deadline
	}
	if hi-lo < j.Processing {
		return 0, false
	}
	// Scan gaps between runs from the back (prefer the latest start).
	prevStart := hi
	for k := len(c.runs) - 1; k >= -1; k-- {
		gapEnd := prevStart
		var gapStart ise.Time
		if k >= 0 {
			gapStart = c.runs[k].end
			prevStart = c.runs[k].start
		} else {
			gapStart = lo
		}
		if gapStart < lo {
			gapStart = lo
		}
		if gapEnd > hi {
			gapEnd = hi
		}
		if gapEnd-gapStart >= j.Processing {
			return gapEnd - j.Processing, true
		}
		if k >= 0 && c.runs[k].start <= lo {
			break
		}
	}
	return 0, false
}

// insertRun inserts r keeping c.runs sorted by start.
func insertRun(c *calibration, r run) {
	c.runs = append(c.runs, r)
	sort.Slice(c.runs, func(a, b int) bool { return c.runs[a].start < c.runs[b].start })
}

// latestCalStart returns the latest start in [lo, hi] at which a new
// calibration can be opened on m without coming within T of an
// existing calibration.
func latestCalStart(T ise.Time, m *machine, lo, hi ise.Time) (ise.Time, bool) {
	// Candidate positions: hi itself, or just before each existing
	// calibration (start - T), scanned from the latest.
	feasible := func(s ise.Time) bool {
		for _, c := range m.cals {
			d := s - c.start
			if d < 0 {
				d = -d
			}
			if d < T {
				return false
			}
		}
		return true
	}
	if feasible(hi) {
		return hi, true
	}
	best, ok := ise.Time(0), false
	for _, c := range m.cals {
		for _, s := range []ise.Time{c.start - T, c.start + T} {
			if s >= lo && s <= hi && feasible(s) && (!ok || s > best) {
				best, ok = s, true
			}
		}
	}
	return best, ok
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
