package heur_test

import (
	"fmt"

	"calib/internal/heur"
	"calib/internal/ise"
)

// Example shows the lazy heuristic sharing one late calibration.
func Example() {
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 100, 5)
	inst.AddJob(90, 100, 5)
	s, err := heur.Lazy(inst, heur.Options{})
	if err != nil {
		panic(err)
	}
	s.SortCanonical()
	fmt.Println("calibrations:", s.NumCalibrations())
	fmt.Println("calibrated at:", s.Calibrations[0].Start)
	// Output:
	// calibrations: 1
	// calibrated at: 90
}
