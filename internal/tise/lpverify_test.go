package tise

import (
	"math"
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestLPSolutionSatisfiesPaperConstraints re-checks the solved
// relaxation against the paper's constraints (1)-(6) directly — not
// through the LP machinery, but by evaluating each inequality on the
// returned Fractional. This guards the *encoding* (BuildLP) as well as
// the solver.
func TestLPSolutionSatisfiesPaperConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	const tol = 1e-6
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(2)
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines: m, T: 10, CalibrationsPerMachine: 1 + rng.Intn(2),
			Window: workload.LongWindow,
		})
		if inst.N() == 0 {
			continue
		}
		mPrime := 3 * m
		frac, err := SolveLP(inst, mPrime, Float64)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// (6) nonnegativity.
		for i, c := range frac.C {
			if c < -tol {
				t.Fatalf("trial %d: C[%d] = %v < 0", trial, i, c)
			}
		}
		// (1) at most m' calibration mass in any (t-T, t] window.
		for i, ti := range frac.Points {
			sum := 0.0
			for k, tk := range frac.Points {
				if tk > ti-inst.T && tk <= ti {
					sum += frac.C[k]
				}
			}
			if sum > float64(mPrime)+tol {
				t.Fatalf("trial %d: constraint (1) violated at point %d: %v > %d", trial, i, sum, mPrime)
			}
		}
		for j, row := range frac.X {
			total := 0.0
			for i, x := range row {
				if x < -tol {
					t.Fatalf("trial %d: X[%d][%d] = %v < 0", trial, j, i, x)
				}
				// (2) X_jt <= C_t.
				if x > frac.C[i]+tol {
					t.Fatalf("trial %d: constraint (2) violated: X[%d][%d]=%v > C=%v", trial, j, i, x, frac.C[i])
				}
				// (5) only TISE-feasible assignments.
				if x > tol && !Feasible(inst.T, inst.Jobs[j], frac.Points[i]) {
					t.Fatalf("trial %d: constraint (5) violated: job %d at infeasible point %d", trial, j, frac.Points[i])
				}
				total += x
			}
			// (4) full assignment.
			if math.Abs(total-1) > tol {
				t.Fatalf("trial %d: constraint (4) violated for job %d: sum=%v", trial, j, total)
			}
		}
		// (3) work capacity per point.
		for i := range frac.Points {
			work := 0.0
			for j := range frac.X {
				work += frac.X[j][i] * float64(inst.Jobs[j].Processing)
			}
			if work > frac.C[i]*float64(inst.T)+tol*float64(inst.T) {
				t.Fatalf("trial %d: constraint (3) violated at point %d: work %v > C*T %v",
					trial, i, work, frac.C[i]*float64(inst.T))
			}
		}
	}
}

// TestLPObjectiveLowerBoundsWitness: LP(3m) <= 3 * witness calibrations
// (Lemma 2 + LP relaxation), i.e. ceil(LP/3) is a valid OPT lower
// bound on m machines.
func TestLPObjectiveLowerBoundsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(2)
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines: m, T: 10, CalibrationsPerMachine: 1 + rng.Intn(2),
			Window: workload.LongWindow,
		})
		if err := ise.Validate(inst, witness); err != nil {
			t.Fatal(err)
		}
		frac, err := SolveLP(inst, 3*m, Float64)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if frac.Objective > 3*float64(witness.NumCalibrations())+1e-6 {
			t.Errorf("trial %d: LP(3m) = %v > 3*witness = %d — Lemma 2 chain broken",
				trial, frac.Objective, 3*witness.NumCalibrations())
		}
	}
}

// TestMachinePrices: the constraint (1) duals must be nonnegative
// after sign normalization, zero on uncongested instances, and
// positive somewhere when the machine cap binds.
func TestMachinePrices(t *testing.T) {
	// Uncongested: one job, three machines' worth of cap.
	loose := ise.NewInstance(10, 1)
	loose.AddJob(0, 40, 4)
	fl, err := SolveLP(loose, 3, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if fl.MachinePrice == nil {
		t.Fatal("machine prices not populated")
	}
	for i, p := range fl.MachinePrice {
		if p < -1e-9 {
			t.Errorf("negative machine price %v at point %d", p, i)
		}
		if p > 1e-9 {
			t.Errorf("uncongested instance has positive price %v at point %d", p, i)
		}
	}
	// Congested: two full-length jobs, cap m' = 1, windows force both
	// calibrations into overlapping T-windows -> the cap binds.
	tight := ise.NewInstance(10, 1)
	tight.AddJob(0, 20, 10)
	tight.AddJob(0, 21, 10)
	ft, err := SolveLP(tight, 2, Float64)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range ft.MachinePrice {
		if p < -1e-9 {
			t.Fatalf("negative price %v", p)
		}
		sum += p
	}
	if sum <= 1e-9 {
		t.Logf("note: cap did not bind on this congested instance (sum=%v)", sum)
	}
}
