package tise

import (
	"fmt"

	"calib/internal/ise"
	"calib/internal/lp"
	"calib/internal/obs"
	"calib/internal/robust"
)

// Engine selects the LP solver backend.
type Engine int

// LP engines.
const (
	// Float64 uses the dense two-phase float tableau simplex (default).
	Float64 Engine = iota
	// Rational uses exact big.Rat simplex (slow; small instances and
	// cross-validation only).
	Rational
	// Revised uses the sparse-column revised simplex with a sparse LU
	// basis factorization (Markowitz-ordered, Forrest–Tomlin column
	// updates): same float64 arithmetic as Float64 but O(nnz) memory
	// and solves instead of the dense tableau's O(m*n).
	Revised
	// RevisedDense is Revised on its dense explicit-inverse reference
	// representation (O(m^2) memory, product-form updates) — the
	// implementation the LU path is validated against and falls back
	// to. Selectable for cross-checking and diagnosis.
	RevisedDense
)

func (e Engine) String() string {
	switch e {
	case Float64:
		return "float64"
	case Rational:
		return "rational"
	case Revised:
		return "revised"
	case RevisedDense:
		return "revised-dense"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Fractional is a fractional TISE solution: the LP relaxation's
// calibration profile and job assignment over the potential
// calibration points.
type Fractional struct {
	// Points are the potential calibration points, sorted ascending.
	Points []ise.Time
	// C[i] is the (fractional) number of calibrations at Points[i].
	C []float64
	// X[j][i] is the fraction of job j assigned to Points[i]
	// (0 for TISE-infeasible pairs).
	X [][]float64
	// Objective is the LP optimum, a lower bound on the number of
	// calibrations of any TISE schedule on MPrime machines.
	Objective float64
	// MPrime is the machine bound m' the LP was solved for.
	MPrime int
	// Iterations counts simplex pivots (summed over cut rounds).
	Iterations int
	// CutRounds and CutsAdded describe the lazy-cut loop (zero under
	// the Direct strategy): how many resolves happened and how many
	// constraint (2) rows were ever materialized.
	CutRounds, CutsAdded int
	// MachinePrice[i] is the dual value of constraint (1) at Points[i]
	// — the shadow price of the m' machine cap on the window ending at
	// that point. Nonzero entries mark the congested stretches where
	// one more machine would reduce the fractional calibration count.
	// Populated by the float engines (Direct strategy); nil otherwise.
	MachinePrice []float64
}

// InfeasibleError reports that the TISE LP relaxation (and hence the
// TISE instance) is infeasible on the given number of machines.
type InfeasibleError struct {
	MPrime int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("tise: LP relaxation infeasible on %d machines", e.MPrime)
}

// NumericalError reports that an LP solve ended without a verdict —
// iteration limit or a claimed unbounded relaxation, both of which
// signal numerical trouble rather than a property of the instance.
// Callers probing feasibility (binary searches over machine counts)
// must treat it differently from *InfeasibleError: the instance may
// well be feasible.
type NumericalError struct {
	MPrime int
	Status lp.Status
}

func (e *NumericalError) Error() string {
	return fmt.Sprintf("tise: LP solve on %d machines ended with status %v", e.MPrime, e.Status)
}

// BuildLP constructs the TISE LP relaxation of inst on mPrime machines
// over the given calibration points (constraints (1)-(6) of the
// paper). It returns the problem plus the variable index maps: cVar[i]
// is the variable of C_{points[i]}, and xVar[j][i] is the variable of
// X_{j,points[i]} or -1 for TISE-infeasible pairs.
//
// Constraint (2), X_jt <= C_t, contributes one row per feasible
// (job, point) pair — by far the largest row family. BuildLP emits all
// of them; BuildLPRelaxed omits them for the lazy-cut strategy of
// SolveLP.
func BuildLP(inst *ise.Instance, mPrime int, points []ise.Time) (p *lp.Problem, cVar []int, xVar [][]int) {
	p, cVar, xVar = buildLP(inst, mPrime, points, true)
	return p, cVar, xVar
}

// BuildLPRelaxed is BuildLP without the constraint (2) rows.
func BuildLPRelaxed(inst *ise.Instance, mPrime int, points []ise.Time) (p *lp.Problem, cVar []int, xVar [][]int) {
	p, cVar, xVar = buildLP(inst, mPrime, points, false)
	return p, cVar, xVar
}

func buildLP(inst *ise.Instance, mPrime int, points []ise.Time, withPairRows bool) (p *lp.Problem, cVar []int, xVar [][]int) {
	p = lp.NewProblem()
	cVar = make([]int, len(points))
	for i, t := range points {
		cVar[i] = p.AddVar(fmt.Sprintf("C[%d]", t), 1)
	}
	xVar = make([][]int, inst.N())
	for j := range inst.Jobs {
		xVar[j] = make([]int, len(points))
		for i := range points {
			xVar[j][i] = -1
		}
	}
	// Constraint (5) is enforced structurally: X variables exist only
	// for TISE-feasible (job, point) pairs.
	for jIdx, j := range inst.Jobs {
		for i, t := range points {
			if Feasible(inst.T, j, t) {
				xVar[jIdx][i] = p.AddVar(fmt.Sprintf("X[%d,%d]", jIdx, t), 0)
			}
		}
	}
	// (1) at most m' calibrations overlap: for each point t, the
	// calibrations started in (t-T, t] number at most m'.
	lo := 0
	for i, t := range points {
		for points[lo] <= t-inst.T {
			lo++
		}
		terms := make([]lp.Term, 0, i-lo+1)
		for k := lo; k <= i; k++ {
			terms = append(terms, lp.Term{Var: cVar[k], Coeff: 1})
		}
		p.AddConstraint(lp.LE, float64(mPrime), terms...)
	}
	// (2) X_jt <= C_t for each feasible pair.
	if withPairRows {
		for jIdx := range inst.Jobs {
			for i := range points {
				if v := xVar[jIdx][i]; v >= 0 {
					p.AddConstraint(lp.LE, 0, lp.Term{Var: v, Coeff: 1}, lp.Term{Var: cVar[i], Coeff: -1})
				}
			}
		}
	}
	// (3) work at a point fits in its calibrations:
	// sum_j X_jt p_j <= C_t T.
	for i := range points {
		terms := []lp.Term{{Var: cVar[i], Coeff: -float64(inst.T)}}
		for jIdx, j := range inst.Jobs {
			if v := xVar[jIdx][i]; v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coeff: float64(j.Processing)})
			}
		}
		if len(terms) > 1 {
			p.AddConstraint(lp.LE, 0, terms...)
		}
	}
	// (4) every job fully assigned.
	for jIdx := range inst.Jobs {
		var terms []lp.Term
		for i := range points {
			if v := xVar[jIdx][i]; v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coeff: 1})
			}
		}
		p.AddConstraint(lp.EQ, 1, terms...)
	}
	return p, cVar, xVar
}

// Strategy selects how the constraint (2) row family is handled.
type Strategy int

// LP strategies.
const (
	// Direct builds every row up front. Measured default: at laptop
	// scale most X_jt <= C_t rows bind, so cut separation materializes
	// the majority of them anyway and pays for several from-scratch
	// resolves (see experiment T6).
	Direct Strategy = iota
	// LazyCuts starts from the relaxation without the X_jt <= C_t
	// rows and adds only the violated ones, resolving until clean.
	// The final solution satisfies the full LP, so the optimum is
	// identical to Direct's; worthwhile only when few rows bind.
	LazyCuts
	// Bounded also omits the X_jt <= C_t rows but additionally installs
	// the implied variable bounds X_jt <= 1 (from constraint (4)) and
	// C_t <= m' (from constraint (1)) before separating violated pair
	// rows lazily. The bounds cost no rows in the revised engine's
	// bounded ratio test, tighten the relaxation so far fewer cuts are
	// ever materialized, and each cut round warm-starts from the
	// previous basis (dual-simplex repair) instead of solving from
	// scratch. Exact at convergence: the final solution satisfies the
	// full LP, so the optimum matches Direct's.
	Bounded
)

func (s Strategy) String() string {
	switch s {
	case LazyCuts:
		return "lazy-cuts"
	case Direct:
		return "direct"
	case Bounded:
		return "bounded"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// cutViolationTol is the slack beyond which an X_jt <= C_t row counts
// as violated during lazy-cut separation.
const cutViolationTol = 1e-7

// LPWarm carries reusable state across related TISE LP solves — e.g.
// adjacent machine counts in a binary search. Basis is the final
// simplex basis of the previous solve; Cuts lists the constraint (2)
// rows materialized so far as (job, point-index) pairs, in the order
// they were appended. X_jt <= C_t is valid for every machine count, so
// both carry over when only mPrime changes: the next solve installs
// the cuts up front (preserving row order, which keeps the basis
// mappable) and warm-starts the revised engine from the basis.
type LPWarm struct {
	Basis *lp.Basis
	Cuts  [][2]int
}

// SolveLP builds and solves the TISE LP relaxation for inst on mPrime
// machines using the Direct strategy. It returns an *InfeasibleError
// when the relaxation is infeasible.
func SolveLP(inst *ise.Instance, mPrime int, engine Engine) (*Fractional, error) {
	return SolveLPWith(inst, mPrime, engine, Direct)
}

// SolveLPWith is SolveLP with an explicit row strategy. Telemetry goes
// to the process-default registry when one is installed (obs.SetDefault);
// Solve threads an explicit registry via Options.Metrics instead.
func SolveLPWith(inst *ise.Instance, mPrime int, engine Engine, strategy Strategy) (*Fractional, error) {
	return solveLP(inst, mPrime, engine, strategy, nil, obs.Default(), nil)
}

// SolveLPBounded runs the Bounded strategy on the revised engine with
// cross-solve warm state. warm may be nil (no reuse); otherwise it is
// updated in place with the final basis and cut pool so the next call
// — typically the adjacent machine count in a binary search — resumes
// from it.
func SolveLPBounded(inst *ise.Instance, mPrime int, warm *LPWarm) (*Fractional, error) {
	return solveLP(inst, mPrime, Revised, Bounded, warm, obs.Default(), nil)
}

// SolveLPBoundedCtl is SolveLPBounded under a cancellation/budget
// control (nil means no limits).
func SolveLPBoundedCtl(inst *ise.Instance, mPrime int, warm *LPWarm, ctl *robust.Control) (*Fractional, error) {
	return solveLP(inst, mPrime, Revised, Bounded, warm, obs.Default(), ctl)
}

func solveLP(inst *ise.Instance, mPrime int, engine Engine, strategy Strategy, warm *LPWarm, met *obs.Registry, ctl *robust.Control) (*Fractional, error) {
	for _, j := range inst.Jobs {
		if !j.IsLong(inst.T) {
			return nil, fmt.Errorf("tise: %v is not a long-window job", j)
		}
	}
	points := CalibrationPoints(inst)
	if inst.N() == 0 {
		return &Fractional{MPrime: mPrime}, nil
	}

	var prob *lp.Problem
	var cVar []int
	var xVar [][]int
	if strategy == Direct {
		prob, cVar, xVar = BuildLP(inst, mPrime, points)
	} else {
		prob, cVar, xVar = BuildLPRelaxed(inst, mPrime, points)
	}
	if strategy == Bounded {
		// Implied bounds replacing rows: X_jt <= 1 from constraint (4),
		// C_t <= m' from constraint (1) with the point's own window.
		for _, v := range cVar {
			prob.SetUpper(v, float64(mPrime))
		}
		for j := range xVar {
			for _, v := range xVar[j] {
				if v >= 0 {
					prob.SetUpper(v, 1)
				}
			}
		}
	}

	frac := &Fractional{MPrime: mPrime}
	added := map[[2]int]bool{} // (job, point) rows already materialized
	var basis *lp.Basis
	if warm != nil {
		// Re-materialize the carried cut pool in its original order so
		// the carried basis maps onto matching rows.
		for _, c := range warm.Cuts {
			j, i := c[0], c[1]
			if v := xVar[j][i]; v >= 0 && !added[c] {
				prob.AddConstraint(lp.LE, 0,
					lp.Term{Var: v, Coeff: 1}, lp.Term{Var: cVar[i], Coeff: -1})
				added[c] = true
			}
		}
		basis = warm.Basis
	}
	const maxRounds = 100
	var xs []float64
	var obj float64
	var duals []float64
	for round := 0; ; round++ {
		// The cut loop is the tise-level long-running loop: each round
		// can add hundreds of rows and trigger a full resolve, so check
		// between rounds (the per-pivot hooks cover the inside).
		if err := ctl.ErrPhase("tise/cuts"); err != nil {
			return nil, err
		}
		status, solX, solObj, iters, solDuals, solBasis, err := solveProblem(prob, engine, basis, met, ctl)
		if err != nil {
			return nil, err
		}
		frac.Iterations += iters
		// Pivots are counted here, once per engine dispatch, so the
		// series covers all three engines; the revised engine records
		// only its internal series (warm hits, fallbacks, ...) itself.
		met.Counter(obs.MTISEResolves).Inc()
		met.Counter(obs.MLPPivots).Add(int64(iters))
		switch status {
		case lp.Optimal:
		case lp.Infeasible:
			if warm != nil {
				// The basis that proved infeasibility is not useful (and
				// not returned); drop the stale one but keep the cuts.
				warm.Basis = nil
			}
			return nil, &InfeasibleError{MPrime: mPrime}
		default:
			return nil, &NumericalError{MPrime: mPrime, Status: status}
		}
		xs, obj = solX, solObj
		duals = solDuals
		basis = solBasis
		if strategy == Direct {
			break
		}
		// Separation: when a job violates any X_jt <= C_t, materialize
		// its whole feasible row family. Cutting only the violated
		// points makes the mass wander to other points of the same job
		// and costs dozens of degenerate repair rounds; per-job batching
		// converges in 2-3 rounds on every workload we generate.
		violated, violPairs := 0, 0
		for j := range xVar {
			jViolated := false
			for i := range points {
				v := xVar[j][i]
				if v < 0 {
					continue
				}
				if xs[v] > xs[cVar[i]]+cutViolationTol {
					jViolated = true
					violPairs++
				}
			}
			if !jViolated {
				continue
			}
			for i := range points {
				v := xVar[j][i]
				if v < 0 || added[[2]int{j, i}] {
					continue
				}
				prob.AddConstraint(lp.LE, 0,
					lp.Term{Var: v, Coeff: 1}, lp.Term{Var: cVar[i], Coeff: -1})
				added[[2]int{j, i}] = true
				if warm != nil {
					warm.Cuts = append(warm.Cuts, [2]int{j, i})
				}
				violated++
			}
		}
		frac.CutRounds = round + 1
		frac.CutsAdded = len(added)
		met.Counter(obs.MTISECutRounds).Inc()
		met.Counter(obs.MTISEViolated).Add(int64(violPairs))
		met.Counter(obs.MTISECuts).Add(int64(violated))
		if violated == 0 {
			break
		}
		if round >= maxRounds {
			return nil, &NumericalError{MPrime: mPrime, Status: lp.IterLimit}
		}
	}
	if warm != nil {
		warm.Basis = basis
	}

	frac.Points = points
	frac.Objective = obj
	// BuildLP emits the constraint (1) rows first, one per point, so
	// their duals are the leading prefix of the dual vector. The sign
	// convention is <=-row duals <= 0; negate so congestion prices
	// read as nonnegative.
	if strategy == Direct && len(duals) >= len(points) {
		frac.MachinePrice = make([]float64, len(points))
		for i := range points {
			frac.MachinePrice[i] = -duals[i]
		}
	}
	frac.C = make([]float64, len(points))
	frac.X = make([][]float64, inst.N())
	for i := range points {
		frac.C[i] = xs[cVar[i]]
	}
	for j := range frac.X {
		frac.X[j] = make([]float64, len(points))
		for i := range points {
			if v := xVar[j][i]; v >= 0 {
				frac.X[j][i] = xs[v]
			}
		}
	}
	return frac, nil
}

// solveProblem dispatches to the selected engine and normalizes the
// result to float64. duals is nil for the rational engine; the final
// basis is returned (and the warm one consumed) by the revised engine
// only.
func solveProblem(prob *lp.Problem, engine Engine, warm *lp.Basis, met *obs.Registry, ctl *robust.Control) (lp.Status, []float64, float64, int, []float64, *lp.Basis, error) {
	check := ctl.CheckFunc("lp")
	switch engine {
	case Rational:
		sol, err := lp.SolveRationalChecked(prob, check)
		if err != nil {
			return 0, nil, 0, 0, nil, nil, err
		}
		if sol.Status != lp.Optimal {
			return sol.Status, nil, 0, sol.Iterations, nil, nil, nil
		}
		xs := make([]float64, len(sol.X))
		for i, r := range sol.X {
			xs[i], _ = r.Float64()
		}
		return sol.Status, xs, sol.ObjectiveFloat(), sol.Iterations, nil, nil, nil
	case Revised, RevisedDense:
		sol, err := lp.SolveRevisedWith(prob, lp.RevisedOptions{
			Warm: warm, Metrics: met, Check: check,
			DenseBasis: engine == RevisedDense,
		})
		if err != nil {
			return 0, nil, 0, 0, nil, nil, err
		}
		return sol.Status, sol.X, sol.Objective, sol.Iterations, sol.Dual, sol.Basis, nil
	default:
		sol, err := lp.SolveChecked(prob, check)
		if err != nil {
			return 0, nil, 0, 0, nil, nil, err
		}
		return sol.Status, sol.X, sol.Objective, sol.Iterations, sol.Dual, nil, nil
	}
}

// MinFeasibleMPrime binary-searches the smallest machine count on
// which the TISE LP relaxation of inst is feasible, warm-starting each
// probe from the previous one's basis and cut pool. Probes that come
// back *NumericalError abort the search; n machines are always
// feasible (every job in its own calibration), so the search space is
// [1, n].
func MinFeasibleMPrime(inst *ise.Instance) (int, error) {
	return MinFeasibleMPrimeCtl(inst, nil)
}

// MinFeasibleMPrimeCtl is MinFeasibleMPrime under a cancellation/
// budget control: the control's limits cover the whole binary search,
// and a tripped limit surfaces as a robust taxonomy error.
func MinFeasibleMPrimeCtl(inst *ise.Instance, ctl *robust.Control) (int, error) {
	n := inst.N()
	if n == 0 {
		return 0, nil
	}
	warm := &LPWarm{}
	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo)/2
		_, err := SolveLPBoundedCtl(inst, mid, warm, ctl)
		switch err.(type) {
		case nil:
			hi = mid
		case *InfeasibleError:
			lo = mid + 1
		default:
			return 0, err
		}
	}
	return lo, nil
}

// TotalCalibrations returns the fractional calibration mass sum(C_t).
func (f *Fractional) TotalCalibrations() float64 {
	var s float64
	for _, c := range f.C {
		s += c
	}
	return s
}
