package tise

import (
	"fmt"

	"calib/internal/ise"
	"calib/internal/lp"
)

// Engine selects the LP solver backend.
type Engine int

// LP engines.
const (
	// Float64 uses the dense two-phase float tableau simplex (default).
	Float64 Engine = iota
	// Rational uses exact big.Rat simplex (slow; small instances and
	// cross-validation only).
	Rational
	// Revised uses the sparse-column revised simplex with a dense
	// basis inverse: same float64 arithmetic as Float64 but O(m^2+nnz)
	// memory instead of the dense tableau's O(m*n).
	Revised
)

func (e Engine) String() string {
	switch e {
	case Float64:
		return "float64"
	case Rational:
		return "rational"
	case Revised:
		return "revised"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Fractional is a fractional TISE solution: the LP relaxation's
// calibration profile and job assignment over the potential
// calibration points.
type Fractional struct {
	// Points are the potential calibration points, sorted ascending.
	Points []ise.Time
	// C[i] is the (fractional) number of calibrations at Points[i].
	C []float64
	// X[j][i] is the fraction of job j assigned to Points[i]
	// (0 for TISE-infeasible pairs).
	X [][]float64
	// Objective is the LP optimum, a lower bound on the number of
	// calibrations of any TISE schedule on MPrime machines.
	Objective float64
	// MPrime is the machine bound m' the LP was solved for.
	MPrime int
	// Iterations counts simplex pivots (summed over cut rounds).
	Iterations int
	// CutRounds and CutsAdded describe the lazy-cut loop (zero under
	// the Direct strategy): how many resolves happened and how many
	// constraint (2) rows were ever materialized.
	CutRounds, CutsAdded int
	// MachinePrice[i] is the dual value of constraint (1) at Points[i]
	// — the shadow price of the m' machine cap on the window ending at
	// that point. Nonzero entries mark the congested stretches where
	// one more machine would reduce the fractional calibration count.
	// Populated by the float engines (Direct strategy); nil otherwise.
	MachinePrice []float64
}

// InfeasibleError reports that the TISE LP relaxation (and hence the
// TISE instance) is infeasible on the given number of machines.
type InfeasibleError struct {
	MPrime int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("tise: LP relaxation infeasible on %d machines", e.MPrime)
}

// BuildLP constructs the TISE LP relaxation of inst on mPrime machines
// over the given calibration points (constraints (1)-(6) of the
// paper). It returns the problem plus the variable index maps: cVar[i]
// is the variable of C_{points[i]}, and xVar[j][i] is the variable of
// X_{j,points[i]} or -1 for TISE-infeasible pairs.
//
// Constraint (2), X_jt <= C_t, contributes one row per feasible
// (job, point) pair — by far the largest row family. BuildLP emits all
// of them; BuildLPRelaxed omits them for the lazy-cut strategy of
// SolveLP.
func BuildLP(inst *ise.Instance, mPrime int, points []ise.Time) (p *lp.Problem, cVar []int, xVar [][]int) {
	p, cVar, xVar = buildLP(inst, mPrime, points, true)
	return p, cVar, xVar
}

// BuildLPRelaxed is BuildLP without the constraint (2) rows.
func BuildLPRelaxed(inst *ise.Instance, mPrime int, points []ise.Time) (p *lp.Problem, cVar []int, xVar [][]int) {
	p, cVar, xVar = buildLP(inst, mPrime, points, false)
	return p, cVar, xVar
}

func buildLP(inst *ise.Instance, mPrime int, points []ise.Time, withPairRows bool) (p *lp.Problem, cVar []int, xVar [][]int) {
	p = lp.NewProblem()
	cVar = make([]int, len(points))
	for i, t := range points {
		cVar[i] = p.AddVar(fmt.Sprintf("C[%d]", t), 1)
	}
	xVar = make([][]int, inst.N())
	for j := range inst.Jobs {
		xVar[j] = make([]int, len(points))
		for i := range points {
			xVar[j][i] = -1
		}
	}
	// Constraint (5) is enforced structurally: X variables exist only
	// for TISE-feasible (job, point) pairs.
	for jIdx, j := range inst.Jobs {
		for i, t := range points {
			if Feasible(inst.T, j, t) {
				xVar[jIdx][i] = p.AddVar(fmt.Sprintf("X[%d,%d]", jIdx, t), 0)
			}
		}
	}
	// (1) at most m' calibrations overlap: for each point t, the
	// calibrations started in (t-T, t] number at most m'.
	lo := 0
	for i, t := range points {
		for points[lo] <= t-inst.T {
			lo++
		}
		terms := make([]lp.Term, 0, i-lo+1)
		for k := lo; k <= i; k++ {
			terms = append(terms, lp.Term{Var: cVar[k], Coeff: 1})
		}
		p.AddConstraint(lp.LE, float64(mPrime), terms...)
	}
	// (2) X_jt <= C_t for each feasible pair.
	if withPairRows {
		for jIdx := range inst.Jobs {
			for i := range points {
				if v := xVar[jIdx][i]; v >= 0 {
					p.AddConstraint(lp.LE, 0, lp.Term{Var: v, Coeff: 1}, lp.Term{Var: cVar[i], Coeff: -1})
				}
			}
		}
	}
	// (3) work at a point fits in its calibrations:
	// sum_j X_jt p_j <= C_t T.
	for i := range points {
		terms := []lp.Term{{Var: cVar[i], Coeff: -float64(inst.T)}}
		for jIdx, j := range inst.Jobs {
			if v := xVar[jIdx][i]; v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coeff: float64(j.Processing)})
			}
		}
		if len(terms) > 1 {
			p.AddConstraint(lp.LE, 0, terms...)
		}
	}
	// (4) every job fully assigned.
	for jIdx := range inst.Jobs {
		var terms []lp.Term
		for i := range points {
			if v := xVar[jIdx][i]; v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coeff: 1})
			}
		}
		p.AddConstraint(lp.EQ, 1, terms...)
	}
	return p, cVar, xVar
}

// Strategy selects how the constraint (2) row family is handled.
type Strategy int

// LP strategies.
const (
	// Direct builds every row up front. Measured default: at laptop
	// scale most X_jt <= C_t rows bind, so cut separation materializes
	// the majority of them anyway and pays for several from-scratch
	// resolves (see experiment T6).
	Direct Strategy = iota
	// LazyCuts starts from the relaxation without the X_jt <= C_t
	// rows and adds only the violated ones, resolving until clean.
	// The final solution satisfies the full LP, so the optimum is
	// identical to Direct's; worthwhile only when few rows bind.
	LazyCuts
)

func (s Strategy) String() string {
	switch s {
	case LazyCuts:
		return "lazy-cuts"
	case Direct:
		return "direct"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// cutViolationTol is the slack beyond which an X_jt <= C_t row counts
// as violated during lazy-cut separation.
const cutViolationTol = 1e-7

// SolveLP builds and solves the TISE LP relaxation for inst on mPrime
// machines using the Direct strategy. It returns an *InfeasibleError
// when the relaxation is infeasible.
func SolveLP(inst *ise.Instance, mPrime int, engine Engine) (*Fractional, error) {
	return SolveLPWith(inst, mPrime, engine, Direct)
}

// SolveLPWith is SolveLP with an explicit row strategy.
func SolveLPWith(inst *ise.Instance, mPrime int, engine Engine, strategy Strategy) (*Fractional, error) {
	for _, j := range inst.Jobs {
		if !j.IsLong(inst.T) {
			return nil, fmt.Errorf("tise: %v is not a long-window job", j)
		}
	}
	points := CalibrationPoints(inst)
	if inst.N() == 0 {
		return &Fractional{MPrime: mPrime}, nil
	}

	var prob *lp.Problem
	var cVar []int
	var xVar [][]int
	if strategy == Direct {
		prob, cVar, xVar = BuildLP(inst, mPrime, points)
	} else {
		prob, cVar, xVar = BuildLPRelaxed(inst, mPrime, points)
	}

	frac := &Fractional{MPrime: mPrime}
	added := map[[2]int]bool{} // (job, point) rows already materialized
	const maxRounds = 100
	var xs []float64
	var obj float64
	var duals []float64
	for round := 0; ; round++ {
		status, solX, solObj, iters, solDuals, err := solveProblem(prob, engine)
		if err != nil {
			return nil, err
		}
		frac.Iterations += iters
		switch status {
		case lp.Optimal:
		case lp.Infeasible:
			return nil, &InfeasibleError{MPrime: mPrime}
		default:
			return nil, fmt.Errorf("tise: LP solve ended with status %v", status)
		}
		xs, obj = solX, solObj
		duals = solDuals
		if strategy == Direct {
			break
		}
		// Separation: add every violated X_jt <= C_t row.
		violated := 0
		for j := range xVar {
			for i := range points {
				v := xVar[j][i]
				if v < 0 || added[[2]int{j, i}] {
					continue
				}
				if xs[v] > xs[cVar[i]]+cutViolationTol {
					prob.AddConstraint(lp.LE, 0,
						lp.Term{Var: v, Coeff: 1}, lp.Term{Var: cVar[i], Coeff: -1})
					added[[2]int{j, i}] = true
					violated++
				}
			}
		}
		frac.CutRounds = round + 1
		frac.CutsAdded = len(added)
		if violated == 0 {
			break
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("tise: lazy-cut loop did not converge in %d rounds", maxRounds)
		}
	}

	frac.Points = points
	frac.Objective = obj
	// BuildLP emits the constraint (1) rows first, one per point, so
	// their duals are the leading prefix of the dual vector. The sign
	// convention is <=-row duals <= 0; negate so congestion prices
	// read as nonnegative.
	if strategy == Direct && len(duals) >= len(points) {
		frac.MachinePrice = make([]float64, len(points))
		for i := range points {
			frac.MachinePrice[i] = -duals[i]
		}
	}
	frac.C = make([]float64, len(points))
	frac.X = make([][]float64, inst.N())
	for i := range points {
		frac.C[i] = xs[cVar[i]]
	}
	for j := range frac.X {
		frac.X[j] = make([]float64, len(points))
		for i := range points {
			if v := xVar[j][i]; v >= 0 {
				frac.X[j][i] = xs[v]
			}
		}
	}
	return frac, nil
}

// solveProblem dispatches to the selected engine and normalizes the
// result to float64. duals is nil for the rational engine.
func solveProblem(prob *lp.Problem, engine Engine) (lp.Status, []float64, float64, int, []float64, error) {
	switch engine {
	case Rational:
		sol, err := lp.SolveRational(prob)
		if err != nil {
			return 0, nil, 0, 0, nil, err
		}
		if sol.Status != lp.Optimal {
			return sol.Status, nil, 0, sol.Iterations, nil, nil
		}
		xs := make([]float64, len(sol.X))
		for i, r := range sol.X {
			xs[i], _ = r.Float64()
		}
		return sol.Status, xs, sol.ObjectiveFloat(), sol.Iterations, nil, nil
	case Revised:
		sol, err := lp.SolveRevised(prob)
		if err != nil {
			return 0, nil, 0, 0, nil, err
		}
		return sol.Status, sol.X, sol.Objective, sol.Iterations, sol.Dual, nil
	default:
		sol, err := lp.Solve(prob)
		if err != nil {
			return 0, nil, 0, 0, nil, err
		}
		return sol.Status, sol.X, sol.Objective, sol.Iterations, sol.Dual, nil
	}
}

// TotalCalibrations returns the fractional calibration mass sum(C_t).
func (f *Fractional) TotalCalibrations() float64 {
	var s float64
	for _, c := range f.C {
		s += c
	}
	return s
}
