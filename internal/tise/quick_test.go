package tise

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calib/internal/ise"
)

// TestQuickRoundingCount verifies the counting identity behind
// Lemma 7: Algorithm 1 emits exactly floor(2 * total fractional mass)
// calibrations (up to float tolerance at the half-boundaries), at
// nondecreasing times drawn from the input points.
func TestQuickRoundingCount(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		points := make([]ise.Time, n)
		c := make([]float64, n)
		cur := ise.Time(0)
		total := 0.0
		for i := range points {
			cur += ise.Time(1 + rng.Int63n(10))
			points[i] = cur
			// Quarters keep half-boundary arithmetic exact in float64.
			c[i] = float64(rng.Intn(8)) / 4
			total += c[i]
		}
		out := RoundCalibrations(points, c)
		want := int(2 * total * (1 + 1e-12))
		if len(out) != want {
			return false
		}
		prev := ise.Time(-1 << 62)
		seen := map[ise.Time]bool{}
		for _, p := range points {
			seen[p] = true
		}
		for _, tt := range out {
			if tt < prev || !seen[tt] {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickFeasiblePredicate checks the TISE constraint is exactly the
// containment of the calibration in the window.
func TestQuickFeasiblePredicate(t *testing.T) {
	prop := func(r, winExtra, offRaw int16, TRaw, pRaw uint8) bool {
		T := ise.Time(2 + TRaw%30)
		p := ise.Time(1 + ise.Time(pRaw)%T)
		j := ise.Job{Release: ise.Time(r), Processing: p}
		j.Deadline = j.Release + p + ise.Time(winExtra&0x3ff)
		t0 := j.Release + ise.Time(offRaw%200)
		got := Feasible(T, j, t0)
		want := j.Release <= t0 && t0+T <= j.Deadline
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTransformBounds re-checks Lemma 2's exact 3x accounting on
// arbitrary feasible single-machine witnesses built from scratch (not
// via the workload package).
func TestQuickTransformBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := ise.Time(4 + rng.Intn(8))
		in := ise.NewInstance(T, 1)
		s := ise.NewSchedule(1)
		cur := ise.Time(rng.Int63n(20))
		nCals := 1 + rng.Intn(3)
		for k := 0; k < nCals; k++ {
			s.Calibrate(0, cur)
			used := ise.Time(0)
			for used < T {
				p := 1 + ise.Time(rng.Int63n(int64(T-used)))
				start := cur + used
				// Long window around the execution.
				r := start - ise.Time(rng.Int63n(int64(2*T)))
				d := start + p + ise.Time(rng.Int63n(int64(2*T)))
				if d-r < 2*T {
					d = r + 2*T
				}
				id := in.AddJob(r, d, p)
				s.Place(id, 0, start)
				used += p
				if rng.Intn(2) == 0 {
					break
				}
			}
			cur += T + ise.Time(rng.Int63n(int64(T)))
		}
		if ise.Validate(in, s) != nil {
			return true // skip rare invalid constructions
		}
		out, err := TransformToTISE(in, s)
		if err != nil {
			return false
		}
		return ise.ValidateTISE(in, out) == nil &&
			out.NumCalibrations() == 3*s.NumCalibrations() &&
			out.Machines == 3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
