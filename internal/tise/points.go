// Package tise implements the long-window algorithm of Fineman &
// Sheridan (SPAA 2015), Section 3: the trimmed-ISE (TISE) relaxation.
//
// The pipeline is:
//
//  1. enumerate the polynomially many potential calibration points
//     (Lemma 3);
//  2. solve the TISE linear-programming relaxation on m' = 3m machines
//     (constraints (1)-(6) of the paper) via calib/internal/lp;
//  3. round the fractional calibrations greedily (Algorithm 1),
//     assigning them to 3m' machines round-robin (Lemma 4);
//  4. assign jobs with earliest-deadline-first on the doubled
//     calibration schedule (Algorithm 2, 6m' machines total).
//
// The result is a feasible TISE (hence ISE) schedule with at most
// 12·C* calibrations on at most 18·m machines whenever the input is a
// feasible long-window ISE instance on m machines (Theorem 12).
//
// The package also implements the ISE→TISE transformation of Lemma 2
// (Figure 1), the proof-only augmented rounding of Algorithm 3 (used
// here to property-test the Lemma 5 / Corollary 6 invariants, and to
// reproduce Figure 3), and the machines→speed transformation of
// Lemma 13 / Theorem 14.
package tise

import (
	"sort"

	"calib/internal/ise"
)

// CalibrationPoints returns the sorted set of potential calibration
// points for inst (Lemma 3):
//
//	T = { r_j + k·T : j in J, k in 0..n },
//
// deduplicated, and pruned to points that at least one job can use
// under the TISE restriction (a point t is useful only if some job j
// has r_j <= t <= d_j - T; a calibration anywhere else is empty in an
// optimal solution).
func CalibrationPoints(inst *ise.Instance) []ise.Time {
	n := ise.Time(inst.N())
	set := make(map[ise.Time]struct{})
	for _, j := range inst.Jobs {
		for k := ise.Time(0); k <= n; k++ {
			set[j.Release+k*inst.T] = struct{}{}
		}
	}
	points := make([]ise.Time, 0, len(set))
	for t := range set {
		if usable(inst, t) {
			points = append(points, t)
		}
	}
	sort.Slice(points, func(a, b int) bool { return points[a] < points[b] })
	return points
}

// usable reports whether a calibration starting at t can host at least
// one job under the TISE restriction.
func usable(inst *ise.Instance, t ise.Time) bool {
	for _, j := range inst.Jobs {
		if Feasible(inst.T, j, t) {
			return true
		}
	}
	return false
}

// Feasible reports the TISE constraint: job j may be assigned to a
// calibration starting at t iff r_j <= t <= d_j - T, i.e. the
// calibration [t, t+T) lies entirely inside j's window.
func Feasible(T ise.Time, j ise.Job, t ise.Time) bool {
	return j.Release <= t && t <= j.Deadline-T
}
