package tise

import (
	"math"
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

func TestCalibrationPoints(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 25, 5) // feasible points in [0, 15]
	in.AddJob(7, 30, 3) // feasible points in [7, 20]
	pts := CalibrationPoints(in)
	if len(pts) == 0 {
		t.Fatal("no calibration points")
	}
	// Sorted, deduplicated, and every point usable by some job.
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("points not strictly increasing: %v", pts)
		}
	}
	for _, p := range pts {
		if !usable(in, p) {
			t.Errorf("unusable point %d survived pruning", p)
		}
	}
	// The grid r_j + kT must be present where usable: 0, 10 from job 0;
	// 7, 17 from job 1.
	want := map[ise.Time]bool{0: true, 10: true, 7: true, 17: true}
	got := map[ise.Time]bool{}
	for _, p := range pts {
		got[p] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("expected point %d missing from %v", w, pts)
		}
	}
	// 27 = 7 + 2*10 is on the grid but usable by no job (> 20 and > 15).
	if got[27] {
		t.Errorf("point 27 should have been pruned: %v", pts)
	}
}

func TestFeasiblePredicate(t *testing.T) {
	j := ise.Job{Release: 5, Deadline: 30, Processing: 4}
	const T = 10
	if !Feasible(T, j, 5) || !Feasible(T, j, 20) || !Feasible(T, j, 12) {
		t.Error("boundary/inner points should be feasible")
	}
	if Feasible(T, j, 4) || Feasible(T, j, 21) {
		t.Error("points outside [r, d-T] should be infeasible")
	}
}

func TestSolveLPSingleJob(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 6)
	for _, eng := range []Engine{Float64, Rational} {
		frac, err := SolveLP(in, 3, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		// Any solution must have total C >= total X = 1, and C = 1 at a
		// feasible point is optimal.
		if math.Abs(frac.Objective-1) > 1e-6 {
			t.Errorf("%v: objective = %v, want 1", eng, frac.Objective)
		}
	}
}

func TestSolveLPSharedCalibration(t *testing.T) {
	// Three jobs, same window, total work <= T: still only one
	// calibration of LP mass needed.
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 3)
	in.AddJob(0, 20, 3)
	in.AddJob(0, 20, 4)
	frac, err := SolveLP(in, 3, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.Objective-1) > 1e-6 {
		t.Errorf("objective = %v, want 1", frac.Objective)
	}
}

func TestSolveLPWorkBound(t *testing.T) {
	// Two jobs of work 7 with one shared window: total work 14 > T=10,
	// so C >= 14/10. The optimum is exactly 1.4 (fractional!).
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 20, 7)
	in.AddJob(0, 20, 7)
	frac, err := SolveLP(in, 6, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if frac.Objective < 1.4-1e-6 {
		t.Errorf("objective = %v, want >= 1.4", frac.Objective)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// m' = 1 machine but two jobs each needing most of a calibration in
	// the same T-window region: constraint (1) caps C in any window at
	// 1, work needs more.
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 10)
	in.AddJob(0, 20, 10)
	_, err := SolveLP(in, 1, Float64)
	if err == nil {
		t.Skip("instance unexpectedly feasible; adjust test")
	}
	if _, ok := err.(*InfeasibleError); !ok {
		t.Fatalf("error = %v, want InfeasibleError", err)
	}
}

func TestRoundCalibrationsFigure2(t *testing.T) {
	points := []ise.Time{0, 1, 2, 3, 4}
	c := []float64{0.3, 0.4, 0.1, 0.9, 0}
	got := RoundCalibrations(points, c)
	want := []ise.Time{1, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("rounded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rounded = %v, want %v", got, want)
		}
	}
}

func TestRoundCalibrationsExactHalves(t *testing.T) {
	points := []ise.Time{0, 5, 10}
	c := []float64{0.5, 0.5, 1.0}
	got := RoundCalibrations(points, c)
	want := []ise.Time{0, 5, 10, 10}
	if len(got) != len(want) {
		t.Fatalf("rounded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rounded = %v, want %v", got, want)
		}
	}
}

func TestAssignRoundRobin(t *testing.T) {
	times := []ise.Time{0, 0, 0, 10, 10, 10}
	s, err := AssignRoundRobin(times, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCalibrations() != 6 || s.Machines != 3 {
		t.Fatalf("schedule %+v", s)
	}
	// Overlap when machines are too few.
	if _, err := AssignRoundRobin([]ise.Time{0, 3}, 1, 10); err == nil {
		t.Error("expected overlap error")
	}
}

func TestAssignJobsEDFSimple(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 4)
	in.AddJob(0, 20, 4)
	in.AddJob(0, 25, 4)
	cal := ise.NewSchedule(1)
	cal.Calibrate(0, 0)
	cal.Calibrate(0, 10)
	out, err := AssignJobsEDF(in, cal)
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.ValidateTISE(in, out); err != nil {
		t.Fatalf("EDF output not TISE-feasible: %v", err)
	}
	if out.Machines != 2 {
		t.Errorf("machines = %d, want 2 (mirrored)", out.Machines)
	}
}

func TestAssignJobsEDFUnschedulable(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 10)
	in.AddJob(0, 20, 10)
	in.AddJob(0, 20, 10)
	in.AddJob(0, 20, 10)
	in.AddJob(0, 20, 10)
	cal := ise.NewSchedule(1) // mirrors to 2 machines x 1 calibration
	cal.Calibrate(0, 0)
	_, err := AssignJobsEDF(in, cal)
	ue, ok := err.(*UnscheduledError)
	if !ok {
		t.Fatalf("error = %v, want UnscheduledError", err)
	}
	if len(ue.Jobs) != 3 {
		t.Errorf("unscheduled = %v, want 3 jobs", ue.Jobs)
	}
}

func TestTransformToTISE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + rng.Intn(3),
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(4),
			Window:                 workload.LongWindow,
		})
		if err := ise.Validate(inst, witness); err != nil {
			t.Fatalf("witness infeasible: %v", err)
		}
		out, err := TransformToTISE(inst, witness)
		if err != nil {
			t.Fatal(err)
		}
		if err := ise.ValidateTISE(inst, out); err != nil {
			t.Fatalf("transformed schedule not TISE-feasible: %v", err)
		}
		if got, want := out.NumCalibrations(), 3*witness.NumCalibrations(); got != want {
			t.Errorf("calibrations = %d, want exactly %d (Lemma 2)", got, want)
		}
		if out.Machines != 3*witness.Machines {
			t.Errorf("machines = %d, want %d", out.Machines, 3*witness.Machines)
		}
	}
}

func TestTransformToTISERejectsShort(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 15, 5) // short window
	s := ise.NewSchedule(1)
	s.Calibrate(0, 0)
	s.Place(0, 0, 0)
	if _, err := TransformToTISE(in, s); err == nil {
		t.Error("short-window job accepted")
	}
}

// TestSolveEndToEnd is the core property test of the long-window
// algorithm: on planted long-window instances, Solve must produce a
// TISE-feasible schedule within Theorem 12's bounds (<= 12x the
// witness calibrations — the witness upper-bounds OPT — and <= 18m
// machines).
func TestSolveEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(2)
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines:               m,
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.LongWindow,
		})
		res, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d (n=%d, m=%d): %v", trial, inst.N(), m, err)
		}
		if err := ise.ValidateTISE(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: schedule not TISE-feasible: %v", trial, err)
		}
		if got, bound := res.Schedule.NumCalibrations(), 12*witness.NumCalibrations(); got > bound {
			t.Errorf("trial %d: calibrations = %d > 12*witness = %d", trial, got, bound)
		}
		if res.Schedule.Machines > 18*m {
			t.Errorf("trial %d: machines = %d > 18m = %d", trial, res.Schedule.Machines, 18*m)
		}
		// The LP objective lower-bounds TISE-OPT(3m) and the rounding
		// at most doubles it.
		if float64(len(res.RoundedTimes)) > 2*res.LP.Objective+1e-6 {
			t.Errorf("trial %d: rounded %d calibrations from LP mass %v", trial, len(res.RoundedTimes), res.LP.Objective)
		}
	}
}

func TestSolveRationalEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, _ := workload.Planted(rng, workload.PlantedConfig{
		Machines:               1,
		T:                      8,
		CalibrationsPerMachine: 2,
		Window:                 workload.LongWindow,
	})
	f, err := SolveLP(inst, 3, Float64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveLP(inst, 3, Rational)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Objective-r.Objective) > 1e-6*(1+r.Objective) {
		t.Errorf("engines disagree: float %v, rational %v", f.Objective, r.Objective)
	}
}

// TestAugmentedRoundInvariants property-tests Lemma 5 and Corollary 6
// on random planted instances: y_j <= carryover, sum y_j p_j <=
// carryover*T, every job's fractional coverage >= 1, and per-
// calibration work <= T.
func TestAugmentedRoundInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + rng.Intn(2),
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.LongWindow,
		})
		frac, err := SolveLP(inst, 3*inst.M, Float64)
		if err != nil {
			t.Fatal(err)
		}
		aug, err := AugmentedRound(inst, frac)
		if err != nil {
			t.Fatal(err)
		}
		const tol = 1e-5
		if aug.MaxYMinusCarry > tol {
			t.Errorf("trial %d: Lemma 5 violated: max(y_j - carryover) = %v", trial, aug.MaxYMinusCarry)
		}
		if aug.MaxWorkMinusCarry > tol*float64(inst.T) {
			t.Errorf("trial %d: Lemma 5 work bound violated: %v", trial, aug.MaxWorkMinusCarry)
		}
		for j, cov := range aug.Coverage {
			if cov < 1-tol {
				t.Errorf("trial %d: Corollary 6 violated: job %d covered %v < 1", trial, j, cov)
			}
		}
		if aug.MaxCalWork > float64(inst.T)+tol {
			t.Errorf("trial %d: Corollary 6 work bound violated: %v > T", trial, aug.MaxCalWork)
		}
		// Algorithm 3 must emit the same calibration schedule as
		// Algorithm 1.
		times := RoundCalibrations(frac.Points, frac.C)
		if len(times) != len(aug.Calibrations) {
			t.Fatalf("trial %d: Algorithm 3 emitted %d calibrations, Algorithm 1 emitted %d",
				trial, len(aug.Calibrations), len(times))
		}
		for i := range times {
			if times[i] != aug.Calibrations[i].Time {
				t.Errorf("trial %d: calibration %d at %d vs %d", trial, i, aug.Calibrations[i].Time, times[i])
			}
		}
	}
}

// TestSolveWithSpeed verifies Theorem 14: at most m machines at speed
// 36 with at most as many calibrations as the intermediate TISE
// schedule.
func TestSolveWithSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.Intn(2)
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines:               m,
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(2),
			Window:                 workload.LongWindow,
		})
		res, err := SolveWithSpeed(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(res.Scaled, res.Schedule); err != nil {
			t.Fatalf("trial %d: speed schedule infeasible: %v", trial, err)
		}
		if res.Schedule.Speed != 36 {
			t.Errorf("trial %d: speed = %d, want 36", trial, res.Schedule.Speed)
		}
		if used := res.Schedule.MachinesUsed(); used > m {
			t.Errorf("trial %d: uses %d machines, want <= %d", trial, used, m)
		}
		if got, mid := res.Schedule.NumCalibrations(), res.Long.Schedule.NumCalibrations(); got > mid {
			t.Errorf("trial %d: %d calibrations after transform > %d before (Lemma 13)", trial, got, mid)
		}
		if got, bound := res.Schedule.NumCalibrations(), 12*witness.NumCalibrations(); got > bound {
			t.Errorf("trial %d: calibrations = %d > 12*witness = %d", trial, got, bound)
		}
	}
}

func TestEngineString(t *testing.T) {
	if Float64.String() == "" || Rational.String() == "" || Engine(9).String() == "" {
		t.Error("empty Engine string")
	}
}
