package tise

import (
	"fmt"
	"sort"

	"calib/internal/ise"
)

// halfEps absorbs float noise when the running calibration total
// crosses a multiple of 1/2 in Algorithm 1.
const halfEps = 1e-7

// RoundCalibrations performs the greedy rounding of Algorithm 1
// (Figure 2): it scans the fractional calibrations C_t in time order,
// keeping a running total, and emits one full calibration at the
// current point each time the total reaches the next multiple of 1/2.
//
// The returned slice contains a calibration start time per emitted
// calibration, nondecreasing, with duplicates when several
// calibrations are emitted at the same point.
func RoundCalibrations(points []ise.Time, c []float64) []ise.Time {
	if len(points) != len(c) {
		panic(fmt.Sprintf("tise: %d points but %d fractional values", len(points), len(c)))
	}
	var out []ise.Time
	total := 0.0
	emitted := 0
	for i, t := range points {
		total += c[i]
		for total >= 0.5*float64(emitted+1)-halfEps {
			out = append(out, t)
			emitted++
		}
	}
	return out
}

// AssignRoundRobin maps the rounded calibration times onto machines
// round-robin (Lemma 4): calibration k goes to machine k mod machines.
// When the fractional profile satisfied LP constraint (1) for m', any
// window of length T holds at most 3m' = machines calibrations, so the
// result has no same-machine overlap; this is verified and an error is
// returned if violated (which would indicate a numerical pathology).
func AssignRoundRobin(times []ise.Time, machines int, T ise.Time) (*ise.Schedule, error) {
	if machines < 1 {
		return nil, fmt.Errorf("tise: round-robin onto %d machines", machines)
	}
	s := ise.NewSchedule(machines)
	last := make(map[int]ise.Time, machines)
	for k, t := range times {
		m := k % machines
		if prev, ok := last[m]; ok && t-prev < T {
			return nil, fmt.Errorf("tise: round-robin overlap on machine %d: calibrations at %d and %d with T=%d", m, prev, t, T)
		}
		last[m] = t
		s.Calibrate(m, t)
	}
	return s, nil
}

// MirrorCalibrations returns a schedule with twice the machines of s
// where every calibration of s also exists, shifted to the upper half
// of the machine range (the "mirroring" step of Algorithm 2 /
// Lemma 9). Placements are not copied.
func MirrorCalibrations(s *ise.Schedule) *ise.Schedule {
	out := ise.NewSchedule(2 * s.Machines)
	for _, c := range s.Calibrations {
		out.Calibrate(c.Machine, c.Start)
		out.Calibrate(c.Machine+s.Machines, c.Start)
	}
	return out
}

// sortedCalibrations returns s's calibrations sorted by (start,
// machine) — the nondecreasing-time scan order of Algorithm 2.
func sortedCalibrations(s *ise.Schedule) []ise.Calibration {
	cals := make([]ise.Calibration, len(s.Calibrations))
	copy(cals, s.Calibrations)
	sort.Slice(cals, func(a, b int) bool {
		if cals[a].Start != cals[b].Start {
			return cals[a].Start < cals[b].Start
		}
		return cals[a].Machine < cals[b].Machine
	})
	return cals
}
