package tise

import (
	"fmt"

	"calib/internal/ise"
)

// FracAssignment is a fractional placement of a job into a rounded
// calibration, produced by the augmented rounding of Algorithm 3.
type FracAssignment struct {
	Job      int
	Fraction float64
}

// RoundedCalibration is one calibration emitted by Algorithm 3
// together with its fractional job assignments (Figure 3's buckets).
type RoundedCalibration struct {
	Time        ise.Time
	Assignments []FracAssignment
}

// AugmentedResult is the outcome of AugmentedRound plus the measured
// extremes of the Lemma 5 / Corollary 6 invariants, so tests can
// assert them directly.
type AugmentedResult struct {
	Calibrations []RoundedCalibration
	// MaxYMinusCarry is the maximum of y_j - carryover observed at any
	// step; Lemma 5 asserts it is <= 0 (up to float noise).
	MaxYMinusCarry float64
	// MaxWorkMinusCarry is the maximum of sum_j y_j p_j - carryover*T
	// observed at any step; Lemma 5 asserts it is <= 0.
	MaxWorkMinusCarry float64
	// Coverage[j] is the total fraction of job j assigned across all
	// calibrations; Corollary 6 asserts Coverage[j] >= 1.
	Coverage []float64
	// MaxCalWork is the maximum total work (fraction * p_j) assigned
	// to a single calibration; Corollary 6 asserts it is <= T.
	MaxCalWork float64
}

// AugmentedRound runs Algorithm 3, the augmented calibration-rounding
// procedure used in the proofs of Lemma 5 and Corollary 6: it emits
// the same calibration schedule as Algorithm 1 while carrying the
// delayed job fractions y_j and writing a 2*y_j fraction of each job
// into the first TISE-feasible emitted calibration.
//
// The procedure exists in the paper only as an existence proof; it is
// implemented here because its invariants are the correctness core of
// the rounding step, which makes them ideal property-test subjects,
// and because it reproduces Figure 3.
func AugmentedRound(inst *ise.Instance, frac *Fractional) (*AugmentedResult, error) {
	n := inst.N()
	if len(frac.X) != n {
		return nil, fmt.Errorf("tise: fractional solution has %d jobs, instance has %d", len(frac.X), n)
	}
	// Work on copies: Algorithm 3 mutates X.
	x := make([][]float64, n)
	for j := range x {
		x[j] = append([]float64(nil), frac.X[j]...)
	}
	y := make([]float64, n)
	res := &AugmentedResult{Coverage: make([]float64, n)}

	carryover := 0.0
	// The Lemma 5 invariants hold for jobs that are still TISE-
	// schedulable at the current point (t <= d_j - T). Once a job
	// expires, its carried fraction y_j is frozen forever — the LP
	// assigns no mass at or beyond an infeasible point, so y_j never
	// grows again — and Corollary 6's 2*y_j overscheduling is exactly
	// what compensates for discarding it.
	checkInvariants := func(t ise.Time) {
		maxY := 0.0
		work := 0.0
		for j := range y {
			if inst.Jobs[j].Deadline-inst.T < t {
				continue // expired: y_j frozen and discarded
			}
			if y[j] > maxY {
				maxY = y[j]
			}
			work += y[j] * float64(inst.Jobs[j].Processing)
		}
		if d := maxY - carryover; d > res.MaxYMinusCarry {
			res.MaxYMinusCarry = d
		}
		if d := work - carryover*float64(inst.T); d > res.MaxWorkMinusCarry {
			res.MaxWorkMinusCarry = d
		}
	}

	for i, t := range frac.Points {
		ct := frac.C[i]
		for carryover+ct >= 0.5-halfEps {
			cal := RoundedCalibration{Time: t}
			var take float64 // fraction of the remaining C_t consumed
			if ct > halfEps {
				take = (0.5 - carryover) / ct
				if take > 1 {
					take = 1
				}
				if take < 0 {
					take = 0
				}
			}
			for j := range y {
				y[j] += take * x[j][i]
				x[j][i] -= take * x[j][i]
			}
			carryover += take * ct
			ct -= take * ct
			checkInvariants(t)
			calWork := 0.0
			for j := range y {
				if y[j] > 0 && Feasible(inst.T, inst.Jobs[j], t) {
					f := 2 * y[j]
					cal.Assignments = append(cal.Assignments, FracAssignment{Job: j, Fraction: f})
					res.Coverage[j] += f
					calWork += f * float64(inst.Jobs[j].Processing)
					y[j] = 0
				}
			}
			if calWork > res.MaxCalWork {
				res.MaxCalWork = calWork
			}
			carryover = 0
			res.Calibrations = append(res.Calibrations, cal)
		}
		carryover += ct
		for j := range y {
			y[j] += x[j][i]
		}
		checkInvariants(t)
	}
	return res, nil
}
