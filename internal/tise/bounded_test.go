package tise

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestBoundedMatchesDirect: the Bounded strategy (implied variable
// bounds + lazy pair cuts + warm restarts) must converge to the exact
// Direct optimum on both the revised and dense engines.
func TestBoundedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 4; trial++ {
		inst, _ := workload.Long(rng, 8, 1, 10)
		direct, err := SolveLPWith(inst, 3, Float64, Direct)
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		for _, engine := range []Engine{Revised, RevisedDense, Float64} {
			bounded, err := SolveLPWith(inst, 3, engine, Bounded)
			if err != nil {
				t.Fatalf("trial %d bounded/%v: %v", trial, engine, err)
			}
			if d := math.Abs(direct.Objective - bounded.Objective); d > 1e-6 {
				t.Fatalf("trial %d: bounded/%v objective %v != direct %v",
					trial, engine, bounded.Objective, direct.Objective)
			}
			// The converged solution satisfies every constraint (2) row
			// even though almost none were materialized.
			for j := range bounded.X {
				for i := range bounded.Points {
					if bounded.X[j][i] > bounded.C[i]+1e-6 {
						t.Fatalf("trial %d: X[%d][%d]=%v > C=%v", trial, j, i,
							bounded.X[j][i], bounded.C[i])
					}
				}
			}
		}
	}
}

// TestBoundedExactAgainstRational cross-checks the bounded revised
// path against the exact rational optimum of the full formulation.
func TestBoundedExactAgainstRational(t *testing.T) {
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 30, 6)
	in.AddJob(2, 35, 4)
	in.AddJob(5, 40, 7)
	in.AddJob(8, 50, 3)
	bounded, err := SolveLPWith(in, 2, Revised, Bounded)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveLPWith(in, 2, Rational, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(bounded.Objective - exact.Objective); d > 1e-7 {
		t.Fatalf("bounded %v != rational %v (diff %g)", bounded.Objective, exact.Objective, d)
	}
}

// TestSolveLPBoundedWarmChain sweeps machine counts the way the
// binary searches do, carrying one LPWarm through, and checks every
// result against a cold Direct solve.
func TestSolveLPBoundedWarmChain(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	inst, _ := workload.Long(rng, 10, 1, 12)
	warm := &LPWarm{}
	for _, mPrime := range []int{4, 2, 3, 1, 5, 3} {
		got, gotErr := SolveLPBounded(inst, mPrime, warm)
		want, wantErr := SolveLP(inst, mPrime, Float64)
		var gi, wi *InfeasibleError
		if errors.As(gotErr, &gi) != errors.As(wantErr, &wi) {
			t.Fatalf("m'=%d: feasibility disagrees: warm err %v, direct err %v", mPrime, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if d := math.Abs(got.Objective - want.Objective); d > 1e-6 {
			t.Fatalf("m'=%d: warm-chained objective %v != direct %v", mPrime, got.Objective, want.Objective)
		}
	}
	if warm.Basis == nil {
		t.Fatal("warm state carried no basis after a feasible solve")
	}
}

// TestMinFeasibleMPrime compares the warm-started binary search with a
// brute-force linear scan over the Direct strategy.
func TestMinFeasibleMPrime(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 3; trial++ {
		inst, _ := workload.Long(rng, 7, 1, 9)
		got, err := MinFeasibleMPrime(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := -1
		for m := 1; m <= inst.N(); m++ {
			_, err := SolveLP(inst, m, Float64)
			if err == nil {
				want = m
				break
			}
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatalf("trial %d m=%d: %v", trial, m, err)
			}
		}
		if got != want {
			t.Fatalf("trial %d: MinFeasibleMPrime = %d, linear scan found %d", trial, got, want)
		}
	}
}

func TestMinFeasibleMPrimeEmpty(t *testing.T) {
	in := ise.NewInstance(5, 1)
	got, err := MinFeasibleMPrime(in)
	if err != nil || got != 0 {
		t.Fatalf("got %d, %v; want 0, nil", got, err)
	}
}

// TestNumericalErrorDistinct checks the error taxonomy: infeasibility
// and numerical failure are distinguishable via errors.As.
func TestNumericalErrorDistinct(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 8)
	in.AddJob(0, 20, 8)
	in.AddJob(0, 20, 8)
	_, err := SolveLPWith(in, 1, Revised, Bounded)
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("expected *InfeasibleError, got %v", err)
	}
	var num *NumericalError
	if errors.As(err, &num) {
		t.Fatal("InfeasibleError must not satisfy *NumericalError")
	}
	ne := &NumericalError{MPrime: 3}
	if ne.Error() == "" {
		t.Fatal("empty NumericalError message")
	}
}
