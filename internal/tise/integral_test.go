package tise

import (
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

func TestSolveIntegralLPSingleJob(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 6)
	res, err := SolveIntegralLP(in, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no integer solution found")
	}
	if res.Objective != 1 {
		t.Errorf("integral objective = %v, want 1", res.Objective)
	}
	if res.LPObjective > res.Objective+1e-9 {
		t.Errorf("LP %v above ILP %v", res.LPObjective, res.Objective)
	}
}

func TestSolveIntegralLPFractionalGap(t *testing.T) {
	// Two jobs of work 7 sharing one window: LP = 1.4, integral >= 2.
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 20, 7)
	in.AddJob(0, 20, 7)
	res, err := SolveIntegralLP(in, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no integer solution found")
	}
	if res.Objective < 2 {
		t.Errorf("integral objective = %v, want >= 2", res.Objective)
	}
	if res.LPObjective > 1.4+1e-6 || res.LPObjective < 1.4-1e-6 {
		t.Errorf("LP objective = %v, want 1.4", res.LPObjective)
	}
}

// TestIntegralBetweenLPAndRounded: on random long instances,
// LP <= ILP <= rounded calibration count (Lemma 7's 2x factor covers
// the gap).
func TestIntegralBetweenLPAndRounded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials := 0
	for trials < 6 {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines: 1, T: 8, CalibrationsPerMachine: 1,
			Window: workload.LongWindow,
		})
		if inst.N() == 0 || inst.N() > 5 {
			continue
		}
		trials++
		res, err := SolveIntegralLP(inst, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Logf("node cap hit on n=%d; skipping", inst.N())
			continue
		}
		if res.LPObjective > res.Objective+1e-6 {
			t.Errorf("LP %v > ILP %v", res.LPObjective, res.Objective)
		}
		long, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if float64(len(long.RoundedTimes)) < res.Objective-1e-6 {
			// The rounded schedule must provide at least the integral
			// optimum's calibrations... not necessarily — rounding
			// guarantees 2*LP >= rounded, and ILP >= LP, but rounded
			// can be below ILP only if the rounding undershoots, which
			// Algorithm 1 cannot (it still schedules all jobs
			// fractionally). Flag for investigation if seen.
			t.Logf("note: rounded %d < ILP %v (n=%d)", len(long.RoundedTimes), res.Objective, inst.N())
		}
	}
}

func TestSolveIntegralLPEmpty(t *testing.T) {
	in := ise.NewInstance(10, 1)
	res, err := SolveIntegralLP(in, 3, 0)
	if err != nil || !res.Found || res.Objective != 0 {
		t.Errorf("empty: %v %+v", err, res)
	}
}
