package tise

import (
	"container/heap"
	"fmt"
	"sort"

	"calib/internal/ise"
)

// UnscheduledError reports that Algorithm 2 could not place every job
// on the given calibration schedule. Under the paper's guarantees this
// cannot happen when the calibrations come from a feasible LP solution
// rounded by Algorithm 1 and mirrored; seeing it on other inputs means
// the calibration schedule genuinely lacks capacity.
type UnscheduledError struct {
	Jobs []int // IDs of jobs left unscheduled
}

func (e *UnscheduledError) Error() string {
	return fmt.Sprintf("tise: EDF left %d job(s) unscheduled: %v", len(e.Jobs), e.Jobs)
}

// jobHeap orders job indices by (deadline, ID): the EDF priority with
// the paper's tie-break by job number.
type jobHeap struct {
	jobs []ise.Job
	idx  []int
}

func (h *jobHeap) Len() int { return len(h.idx) }
func (h *jobHeap) Less(a, b int) bool {
	ja, jb := h.jobs[h.idx[a]], h.jobs[h.idx[b]]
	if ja.Deadline != jb.Deadline {
		return ja.Deadline < jb.Deadline
	}
	return ja.ID < jb.ID
}
func (h *jobHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *jobHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *jobHeap) Pop() any {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// AssignJobsEDF runs Algorithm 2: it mirrors the calibration schedule
// cal onto twice as many machines, scans all calibrations in
// nondecreasing order of start time, and fills each greedily with the
// earliest-deadline unscheduled job whose window TISE-contains the
// calibration and whose processing time still fits.
//
// It returns a complete TISE schedule (calibrations plus placements)
// or an *UnscheduledError listing the jobs that did not fit.
func AssignJobsEDF(inst *ise.Instance, cal *ise.Schedule) (*ise.Schedule, error) {
	out := MirrorCalibrations(cal)
	cals := sortedCalibrations(out)

	// Jobs sorted by release time feed the EDF heap as calibrations
	// whose start passes their release are scanned. TISE eligibility
	// also requires t <= d_j - T, checked on pop.
	byRelease := make([]int, inst.N())
	for i := range byRelease {
		byRelease[i] = i
	}
	sort.Slice(byRelease, func(a, b int) bool {
		ja, jb := inst.Jobs[byRelease[a]], inst.Jobs[byRelease[b]]
		if ja.Release != jb.Release {
			return ja.Release < jb.Release
		}
		return ja.ID < jb.ID
	})

	h := &jobHeap{jobs: inst.Jobs}
	next := 0
	scheduled := 0
	for _, c := range cals {
		t := c.Start
		for next < len(byRelease) && inst.Jobs[byRelease[next]].Release <= t {
			heap.Push(h, byRelease[next])
			next++
		}
		used := ise.Time(0)
		for h.Len() > 0 {
			j := h.idx[0]
			job := inst.Jobs[j]
			if job.Deadline-inst.T < t {
				// This job can never be TISE-placed at t, and
				// calibration starts are nondecreasing, so it can
				// never be placed later either: drop it permanently
				// (reported at the end if it stays unscheduled).
				heap.Pop(h)
				continue
			}
			if used+job.Processing > inst.T {
				// The earliest-deadline job does not fit; Algorithm 2
				// finishes this calibration and moves on.
				break
			}
			heap.Pop(h)
			out.Place(j, c.Machine, t+used)
			used += job.Processing
			scheduled++
		}
	}
	if scheduled != inst.N() {
		err := &UnscheduledError{}
		placed := make([]bool, inst.N())
		for _, p := range out.Placements {
			placed[p.Job] = true
		}
		for j, ok := range placed {
			if !ok {
				err.Jobs = append(err.Jobs, j)
			}
		}
		return out, err
	}
	return out, nil
}
