package tise

import (
	"fmt"
	"sort"

	"calib/internal/ise"
)

// TransformToTISE implements the constructive proof of Lemma 2
// (Figure 1): given a feasible ISE schedule for a long-window instance
// on m machines with C calibrations, it produces a feasible TISE
// schedule on 3m machines with exactly 3C calibrations.
//
// Machine i of the source maps to the triple (i', i+, i-) =
// (3i, 3i+1, 3i+2): i' keeps the original calibrations, i+ carries
// them delayed by +T, and i- advanced by -T. A job already satisfying
// the TISE restriction stays on i'; a job with r_j > t_j (calibration
// started before the job's release) is delayed by T onto i+; a job
// with d_j < t_j + T (calibration ends after the deadline) is advanced
// by T onto i-.
//
// The input schedule must be feasible at unit speed; an error is
// returned if a job's containing calibration cannot be identified or
// if the instance has a short-window job (Lemma 2 requires
// d_j - r_j >= 2T).
func TransformToTISE(inst *ise.Instance, src *ise.Schedule) (*ise.Schedule, error) {
	if src.Speed != 1 {
		return nil, fmt.Errorf("tise: TransformToTISE requires a unit-speed schedule, got speed %d", src.Speed)
	}
	for _, j := range inst.Jobs {
		if !j.IsLong(inst.T) {
			return nil, fmt.Errorf("tise: %v is not a long-window job", j)
		}
	}
	out := ise.NewSchedule(3 * src.Machines)
	calsByM := src.CalibrationsByMachine()
	for i, starts := range calsByM {
		for _, t := range starts {
			out.Calibrate(3*i, t)
			out.Calibrate(3*i+1, t+inst.T)
			out.Calibrate(3*i+2, t-inst.T)
		}
	}
	for _, p := range src.Placements {
		j := inst.Jobs[p.Job]
		starts := calsByM[p.Machine]
		tj, ok := containing(starts, p.Start, p.Start+j.Processing, inst.T)
		if !ok {
			return nil, fmt.Errorf("tise: %v at %d on machine %d has no containing calibration", j, p.Start, p.Machine)
		}
		switch {
		case j.Release <= tj && tj <= j.Deadline-inst.T:
			out.Place(p.Job, 3*p.Machine, p.Start)
		case j.Release > tj:
			// Delay: the calibration [t_j+T, t_j+2T) on i+ is inside
			// the window because d_j >= r_j + 2T > t_j + 2T.
			out.Place(p.Job, 3*p.Machine+1, p.Start+inst.T)
		default: // d_j < t_j + T
			// Advance: symmetric argument on i-.
			out.Place(p.Job, 3*p.Machine+2, p.Start-inst.T)
		}
	}
	return out, nil
}

// containing returns the start of the calibration in sorted starts
// that contains [start, end), given length T.
func containing(starts []ise.Time, start, end, T ise.Time) (ise.Time, bool) {
	i := sort.Search(len(starts), func(i int) bool { return starts[i] > start })
	if i == 0 {
		return 0, false
	}
	t := starts[i-1]
	if t <= start && end <= t+T {
		return t, true
	}
	return 0, false
}
