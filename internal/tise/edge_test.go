package tise

import (
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestSolveMinimalT exercises the smallest legal calibration length.
func TestSolveMinimalT(t *testing.T) {
	in := ise.NewInstance(2, 1)
	in.AddJob(0, 4, 1) // window exactly 2T
	in.AddJob(0, 5, 2)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.ValidateTISE(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}

// TestSolveFullLengthJobs: p_j = T jobs leave zero slack inside their
// calibrations.
func TestSolveFullLengthJobs(t *testing.T) {
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 20, 10)
	in.AddJob(0, 20, 10)
	in.AddJob(5, 40, 10)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.ValidateTISE(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}

// TestSolveNegativeReleases: the model allows negative times.
func TestSolveNegativeReleases(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(-30, -5, 4)
	in.AddJob(-10, 20, 6)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.ValidateTISE(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}

// TestSolveIdenticalJobs: many copies of one job stress the LP's
// degenerate structure and the EDF tie-breaks.
func TestSolveIdenticalJobs(t *testing.T) {
	in := ise.NewInstance(10, 2)
	for i := 0; i < 8; i++ {
		in.AddJob(0, 50, 5)
	}
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.ValidateTISE(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	// 8 jobs x 5 work = 40 = 4 calibrations at best; 12*OPT bound.
	if res.Schedule.NumCalibrations() > 48 {
		t.Errorf("calibrations = %d, way above 12*OPT", res.Schedule.NumCalibrations())
	}
}

// TestSolveRevisedEngineEndToEnd runs the whole long-window pipeline on
// the revised-simplex engine.
func TestSolveRevisedEngineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 6; trial++ {
		inst, _ := workload.Long(rng, 8, 1, 10)
		res, err := Solve(inst, Options{Engine: Revised})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.ValidateTISE(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		// The revised engine must match the dense engine's optimum.
		dense, err := Solve(inst, Options{Engine: Float64})
		if err != nil {
			t.Fatal(err)
		}
		if d := res.LP.Objective - dense.LP.Objective; d > 1e-6 || d < -1e-6 {
			t.Errorf("trial %d: LP objectives differ: revised %v, dense %v",
				trial, res.LP.Objective, dense.LP.Objective)
		}
	}
}

// TestLazyCutsMatchesDirectOnSolve runs full pipelines under both row
// strategies and compares the LP optima.
func TestLazyCutsMatchesDirectOnSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	inst, _ := workload.Long(rng, 8, 1, 10)
	direct, err := SolveLPWith(inst, 3, Float64, Direct)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := SolveLPWith(inst, 3, Float64, LazyCuts)
	if err != nil {
		t.Fatal(err)
	}
	if d := direct.Objective - lazy.Objective; d > 1e-6 || d < -1e-6 {
		t.Fatalf("objectives differ: direct %v, lazy %v", direct.Objective, lazy.Objective)
	}
	if lazy.CutRounds == 0 {
		t.Error("lazy strategy recorded no cut rounds")
	}
	// The lazy final solution must satisfy every constraint (2) row.
	for j := range lazy.X {
		for i := range lazy.Points {
			if lazy.X[j][i] > lazy.C[i]+1e-6 {
				t.Fatalf("constraint (2) violated in lazy solution: X[%d][%d]=%v > C=%v",
					j, i, lazy.X[j][i], lazy.C[i])
			}
		}
	}
}

// TestStrategyString covers the enum printer.
func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Direct, LazyCuts, Strategy(9)} {
		if s.String() == "" {
			t.Errorf("empty string for strategy %d", int(s))
		}
	}
}
