package tise

import (
	"fmt"
	"sort"

	"calib/internal/ise"
)

// SpeedTransform implements the machines→speed transformation of
// Lemma 13: given a feasible TISE schedule src for inst on c*m unit-
// speed machines, it produces a feasible ISE schedule on m machines
// running at speed 2c, with at most as many calibrations as src.
//
// Machines are grouped c at a time; each group maps to one target
// machine. The target machine's calibrations are chosen greedily so
// that every calibrated tick of any source machine is calibrated on
// the target; each source calibration is then mapped into a dedicated
// size-T/(2c) slot of a target calibration half that fully contains
// it, with the source jobs compacted into the slot in order at 2c
// speed.
//
// Exactness requirements: src must have unit speed, src.Machines must
// be divisible by c, and inst.T and every placed job's processing time
// must be divisible by 2c (scale the instance with Instance.Scale(2c)
// first — see SolveWithSpeed).
func SpeedTransform(inst *ise.Instance, src *ise.Schedule, c int) (*ise.Schedule, error) {
	if c < 1 {
		return nil, fmt.Errorf("tise: group size c=%d, want >= 1", c)
	}
	if src.Speed != 1 {
		return nil, fmt.Errorf("tise: SpeedTransform requires a unit-speed source, got %d", src.Speed)
	}
	if src.Machines%c != 0 {
		return nil, fmt.Errorf("tise: %d machines not divisible by group size %d", src.Machines, c)
	}
	twoC := ise.Time(2 * c)
	if inst.T%twoC != 0 {
		return nil, fmt.Errorf("tise: T=%d not divisible by 2c=%d; scale the instance first", inst.T, twoC)
	}
	for _, j := range inst.Jobs {
		if j.Processing%twoC != 0 {
			return nil, fmt.Errorf("tise: %v processing not divisible by 2c=%d; scale the instance first", j, twoC)
		}
	}
	groups := src.Machines / c
	out := ise.NewSchedule(groups)
	out.Speed = int64(twoC)

	calsByM := src.CalibrationsByMachine()
	// Placements per source machine, ordered by start.
	placByM := make(map[int][]ise.Placement)
	for _, p := range src.Placements {
		placByM[p.Machine] = append(placByM[p.Machine], p)
	}
	for m := range placByM {
		ps := placByM[m]
		sort.Slice(ps, func(a, b int) bool { return ps[a].Start < ps[b].Start })
	}

	half := inst.T / 2
	slot := inst.T / twoC
	for g := 0; g < groups; g++ {
		// All source calibrations in this group as (localMachine, start).
		type srcCal struct {
			local int
			start ise.Time
		}
		var cals []srcCal
		for i := 0; i < c; i++ {
			for _, s := range calsByM[g*c+i] {
				cals = append(cals, srcCal{local: i, start: s})
			}
		}
		if len(cals) == 0 {
			continue
		}
		sort.Slice(cals, func(a, b int) bool {
			if cals[a].start != cals[b].start {
				return cals[a].start < cals[b].start
			}
			return cals[a].local < cals[b].local
		})
		starts := make([]ise.Time, len(cals))
		for i, sc := range cals {
			starts[i] = sc.start
		}
		// Greedy target calibration times: if some source calibration
		// covers tick t, calibrate the target at t and advance by T;
		// otherwise jump to the next source calibration start.
		var targets []ise.Time
		t := starts[0]
		for {
			if covered(starts, t, inst.T) {
				targets = append(targets, t)
				out.Calibrate(g, t)
				t += inst.T
				continue
			}
			i := sort.Search(len(starts), func(i int) bool { return starts[i] > t })
			if i == len(starts) {
				break
			}
			t = starts[i]
		}
		// Map each source calibration to a (target, half) it fully
		// contains, then compact its jobs into the machine's slot.
		for _, sc := range cals {
			tt, h, ok := findSlot(targets, sc.start, inst.T, half)
			if !ok {
				return nil, fmt.Errorf("tise: source calibration at %d (group %d) has no containing target half", sc.start, g)
			}
			slotStart := tt + ise.Time(h)*half + ise.Time(sc.local)*slot
			cursor := slotStart
			for _, p := range placByM[g*c+sc.local] {
				j := inst.Jobs[p.Job]
				if p.Start < sc.start || p.Start+j.Processing > sc.start+inst.T {
					continue // belongs to a different calibration
				}
				out.Place(p.Job, g, cursor)
				cursor += j.Processing / twoC
			}
			if cursor > slotStart+slot {
				return nil, fmt.Errorf("tise: slot overflow at target %d group %d: %d > %d", tt, g, cursor, slotStart+slot)
			}
		}
	}
	return out, nil
}

// covered reports whether some source calibration [s, s+T) with s in
// the sorted list contains tick t.
func covered(starts []ise.Time, t, T ise.Time) bool {
	i := sort.Search(len(starts), func(i int) bool { return starts[i] > t })
	return i > 0 && starts[i-1]+T > t
}

// findSlot locates a target calibration tt such that the source
// calibration [s, s+T) fully contains the first half (h=0, tt in
// [s, s+T/2]) or the second half (h=1, tt in [s-T/2, s]) of
// [tt, tt+T).
func findSlot(targets []ise.Time, s, T, half ise.Time) (tt ise.Time, h int, ok bool) {
	lo := sort.Search(len(targets), func(i int) bool { return targets[i] >= s-half })
	for i := lo; i < len(targets) && targets[i] <= s+half; i++ {
		t := targets[i]
		if t >= s && t+half <= s+T {
			return t, 0, true
		}
		if t+half >= s && t+T <= s+T {
			return t, 1, true
		}
	}
	return 0, 0, false
}
