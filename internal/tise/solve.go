package tise

import (
	"fmt"
	"time"

	"calib/internal/ise"
	"calib/internal/obs"
	"calib/internal/robust"
)

// Options configures the long-window solver.
type Options struct {
	// Engine selects the LP backend (default Float64).
	Engine Engine
	// MPrime overrides the TISE machine bound m' used by the LP; when
	// zero the paper's m' = 3m is used (Lemma 2).
	MPrime int
	// Strategy selects the constraint (2) row handling (default
	// Direct). Bounded is the hot-path configuration: implied variable
	// bounds plus warm-started lazy cuts on the revised engine.
	Strategy Strategy
	// Span, when non-nil, parents the lp/rounding/edf stage spans.
	Span *obs.Span
	// Metrics receives the solver counter series (see internal/obs);
	// nil falls back to the process default (obs.SetDefault), and with
	// neither installed telemetry is disabled at zero cost.
	Metrics *obs.Registry
	// Control carries the solve's cancellation context and work budget
	// into the LP pivot loops and the cut loop. nil means no limits.
	Control *robust.Control
}

// Result is the output of Solve: the feasible TISE schedule plus the
// intermediate artifacts, which the experiments and figures report.
type Result struct {
	// Schedule is the final feasible TISE (hence ISE) schedule,
	// produced by Algorithm 2 on the rounded calibrations.
	Schedule *ise.Schedule
	// LP is the fractional relaxation solution; LP.Objective lower-
	// bounds the optimal TISE calibration count on MPrime machines.
	LP *Fractional
	// RoundedTimes are the calibration times emitted by Algorithm 1
	// (before mirroring), at most 2*LP.Objective of them.
	RoundedTimes []ise.Time
	// Timing records wall-clock per stage, for observability and the
	// scaling experiment.
	Timing Timing
}

// Timing is the per-stage wall clock of a long-window solve.
type Timing struct {
	LP    time.Duration // build + solve the relaxation
	Round time.Duration // Algorithm 1 + round-robin machines
	EDF   time.Duration // Algorithm 2
}

// Solve runs the complete long-window TISE algorithm of Section 3 on a
// long-window ISE instance: LP relaxation on m' = 3m machines, greedy
// rounding onto 3m' machines, and EDF assignment on the doubled
// schedule — 18m machines and at most 12·C* calibrations in total
// (Theorem 12).
//
// Solve returns an *InfeasibleError if the LP relaxation is infeasible
// on m' machines (in particular, the instance then has no feasible
// ISE schedule on m machines, by Lemma 2).
func Solve(inst *ise.Instance, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	mPrime := opts.MPrime
	if mPrime == 0 {
		mPrime = 3 * inst.M
	}
	met := opts.Metrics
	if met == nil {
		met = obs.Default()
	}
	var tm Timing
	t0 := time.Now()
	sp := opts.Span.Start("lp")
	sp.SetStr("engine", opts.Engine.String())
	sp.SetStr("strategy", opts.Strategy.String())
	sp.SetInt("mprime", int64(mPrime))
	frac, err := solveLP(inst, mPrime, opts.Engine, opts.Strategy, nil, met, opts.Control)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetInt("points", int64(len(frac.Points)))
	sp.SetFloat("objective", frac.Objective)
	sp.SetInt("pivots", int64(frac.Iterations))
	sp.SetInt("cut_rounds", int64(frac.CutRounds))
	sp.End()
	tm.LP = time.Since(t0)
	t0 = time.Now()
	sp = opts.Span.Start("rounding")
	times := RoundCalibrations(frac.Points, frac.C)
	cal, err := AssignRoundRobin(times, 3*mPrime, inst.T)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetInt("calibrations", int64(len(times)))
	sp.End()
	tm.Round = time.Since(t0)
	t0 = time.Now()
	sp = opts.Span.Start("edf")
	sched, err := AssignJobsEDF(inst, cal)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("tise: %w", err)
	}
	sp.SetInt("jobs", int64(inst.N()))
	sp.End()
	tm.EDF = time.Since(t0)
	return &Result{Schedule: sched, LP: frac, RoundedTimes: times, Timing: tm}, nil
}

// SpeedResult is the output of SolveWithSpeed. Because the
// machines→speed transformation needs T and all processing times
// divisible by 2c, the instance is scaled by 2c internally; the
// returned schedule is for Scaled (an equivalent instance with every
// time quantity multiplied by 2c).
type SpeedResult struct {
	// Scaled is inst.Scale(2c); Schedule is feasible for it.
	Scaled *ise.Instance
	// Schedule uses at most inst.M machines at speed 2c, with at most
	// as many calibrations as the intermediate TISE schedule
	// (Theorem 14: <= 12·C* calibrations at speed 36 when c=18).
	Schedule *ise.Schedule
	// Long is the intermediate long-window result on the scaled
	// instance (18m machines, unit speed).
	Long *Result
	// C is the machine group size used (18 unless overridden).
	C int
}

// SolveWithSpeed runs Solve and then the Lemma 13 transformation,
// yielding Theorem 14's 1-machine-augmentation solution: at most
// inst.M machines at speed 2c (c = 18, i.e. 36-speed), with at most
// 12·C* calibrations.
func SolveWithSpeed(inst *ise.Instance, opts Options) (*SpeedResult, error) {
	const c = 18 // Theorem 14: the TISE schedule lives on 18m machines
	scaled := inst.Scale(ise.Time(2 * c))
	res, err := Solve(scaled, opts)
	if err != nil {
		return nil, err
	}
	// res.Schedule is on 18m machines; group size c=18 maps them onto
	// inst.M machines at speed 36.
	fast, err := SpeedTransform(scaled, res.Schedule, c)
	if err != nil {
		return nil, err
	}
	return &SpeedResult{Scaled: scaled, Schedule: fast, Long: res, C: c}, nil
}
