package tise_test

import (
	"fmt"

	"calib/internal/ise"
	"calib/internal/tise"
)

// Example runs the complete long-window pipeline on a tiny instance
// and reports Theorem 12's accounting.
func Example() {
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 40, 6)
	inst.AddJob(5, 35, 4)
	inst.AddJob(20, 60, 8)
	res, err := tise.Solve(inst, tise.Options{})
	if err != nil {
		panic(err)
	}
	if err := ise.ValidateTISE(inst, res.Schedule); err != nil {
		panic(err)
	}
	fmt.Printf("LP optimum: %.1f\n", res.LP.Objective)
	fmt.Printf("rounded calibrations: %d (at most 2x the LP)\n", len(res.RoundedTimes))
	fmt.Printf("schedule feasible: %v\n", true)
	// The total work is 18 over T=10, so the LP needs 1.8 fractional
	// calibrations; Algorithm 1 rounds that into 3 full ones.
	// Output:
	// LP optimum: 1.8
	// rounded calibrations: 3 (at most 2x the LP)
	// schedule feasible: true
}

// ExampleRoundCalibrations reproduces the Figure 2 rounding step.
func ExampleRoundCalibrations() {
	points := []ise.Time{0, 4, 7, 9}
	frac := []float64{0.3, 0.4, 0.1, 0.9}
	fmt.Println(tise.RoundCalibrations(points, frac))
	// Output:
	// [4 9 9]
}

// ExampleTransformToTISE applies the Lemma 2 construction.
func ExampleTransformToTISE() {
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 30, 5)
	src := ise.NewSchedule(1)
	src.Calibrate(0, 2)
	src.Place(0, 0, 2)
	out, err := tise.TransformToTISE(inst, src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("calibrations %d -> %d, machines %d -> %d\n",
		src.NumCalibrations(), out.NumCalibrations(), src.Machines, out.Machines)
	// Output:
	// calibrations 1 -> 3, machines 1 -> 3
}
