package tise

import (
	"calib/internal/ilp"
	"calib/internal/ise"
	"calib/internal/lp"
)

// IntegralResult is the outcome of SolveIntegralLP.
type IntegralResult struct {
	// Objective is the optimal integer objective (calibration count in
	// the relaxed packing model), valid when Found.
	Objective float64
	// Found reports whether an optimal integer solution was proven.
	Found bool
	// LPObjective is the fractional optimum of the same relaxation.
	LPObjective float64
	// Nodes is the branch-and-bound node count.
	Nodes int
}

// SolveIntegralLP solves the TISE relaxation with integral C_t and
// X_jt by LP-based branch and bound, yielding the exact integer
// optimum of the paper's relaxation.
//
// Note the paper's footnote 2: an integer solution of this program is
// still a relaxation of the TISE problem (constraint (3) bounds total
// work per point but does not enforce bin-packing the jobs into the
// C_t individual calibrations), so the value is a lower bound on
// TISE-OPT that is at least as strong as the fractional LP. Its ratio
// to the LP optimum is the integrality gap the greedy rounding of
// Algorithm 1 pays for (experiment T10).
func SolveIntegralLP(inst *ise.Instance, mPrime int, maxNodes int) (*IntegralResult, error) {
	frac, err := SolveLP(inst, mPrime, Float64)
	if err != nil {
		return nil, err
	}
	if inst.N() == 0 {
		return &IntegralResult{Found: true}, nil
	}
	points := frac.Points
	prob, cVar, xVar := BuildLP(inst, mPrime, points)
	intVars := append([]int(nil), cVar...)
	for j := range xVar {
		for i := range points {
			if v := xVar[j][i]; v >= 0 {
				intVars = append(intVars, v)
			}
		}
	}
	res, err := ilp.Solve(prob, intVars, ilp.Options{MaxNodes: maxNodes})
	if err != nil {
		return nil, err
	}
	out := &IntegralResult{LPObjective: frac.Objective, Nodes: res.Nodes}
	if res.Status == lp.Optimal {
		out.Found = true
		out.Objective = res.Objective
	}
	return out, nil
}
