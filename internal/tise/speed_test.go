package tise

import (
	"testing"

	"calib/internal/ise"
)

func TestCovered(t *testing.T) {
	starts := []ise.Time{0, 20, 40}
	const T = 10
	cases := []struct {
		t    ise.Time
		want bool
	}{
		{0, true}, {9, true}, {10, false}, {19, false},
		{20, true}, {29, true}, {30, false},
		{-1, false}, {49, true}, {50, false},
	}
	for _, c := range cases {
		if got := covered(starts, c.t, T); got != c.want {
			t.Errorf("covered(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestFindSlot(t *testing.T) {
	const T, half = 10, 5
	targets := []ise.Time{0, 20}
	// Source calibration [0, 10): contains both halves of target 0.
	if tt, h, ok := findSlot(targets, 0, T, half); !ok || tt != 0 || h != 0 {
		t.Errorf("exact overlay: got (%d,%d,%v)", tt, h, ok)
	}
	// Source [17, 27): contains first half of target 20 ([20, 25)).
	if tt, h, ok := findSlot(targets, 17, T, half); !ok || tt != 20 || h != 0 {
		t.Errorf("first half: got (%d,%d,%v)", tt, h, ok)
	}
	// Source [13, 23): contains second half of target... target 20's
	// halves are [20,25) and [25,30): neither inside [13,23). Target
	// 0's halves are gone. No slot.
	if _, _, ok := findSlot(targets, 13, T, half); ok {
		t.Error("expected no slot for source at 13")
	}
	// Source [-5, 5): contains target 0's second half? [5,10) is not
	// inside [-5, 5). First half [0,5) is. Yes: h=0? t>=s(-5) and
	// t+half(5) <= s+T(5): ok.
	if tt, h, ok := findSlot(targets, -5, T, half); !ok || tt != 0 || h != 1 {
		// The second-half rule fires first? Check: for t=0: first-half
		// needs t >= s: 0 >= -5 ok and t+half <= s+T: 5 <= 5 ok -> h=0.
		if !ok || tt != 0 || h != 0 {
			t.Errorf("source at -5: got (%d,%d,%v)", tt, h, ok)
		}
	}
}

func TestSpeedTransformRejects(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 5)
	s := ise.NewSchedule(4)
	s.Calibrate(0, 0)
	s.Place(0, 0, 0)

	if _, err := SpeedTransform(in, s, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := SpeedTransform(in, s, 3); err == nil {
		t.Error("machines not divisible by c accepted")
	}
	if _, err := SpeedTransform(in, s, 4); err == nil {
		t.Error("T not divisible by 2c accepted")
	}
	fast := s.Clone()
	fast.Speed = 2
	if _, err := SpeedTransform(in, fast, 2); err == nil {
		t.Error("non-unit-speed source accepted")
	}
}

func TestSpeedTransformTiny(t *testing.T) {
	// Two machines, group size 2: both calibrations at the same time
	// fold into one target calibration with two slots.
	const c = 2
	in := ise.NewInstance(8, 1) // T = 8 = 2c * 2
	in.AddJob(0, 20, 4)
	in.AddJob(0, 20, 4)
	src := ise.NewSchedule(2)
	src.Calibrate(0, 0)
	src.Calibrate(1, 0)
	src.Place(0, 0, 0)
	src.Place(1, 1, 0)
	if err := ise.ValidateTISE(in, src); err != nil {
		t.Fatal(err)
	}
	out, err := SpeedTransform(in, src, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Speed != 2*c {
		t.Errorf("speed = %d, want %d", out.Speed, 2*c)
	}
	if err := ise.Validate(in, out); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if out.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1 (both sources share the target)", out.NumCalibrations())
	}
	if out.MachinesUsed() != 1 {
		t.Errorf("machines used = %d, want 1", out.MachinesUsed())
	}
}
