// Package replay replays an ISE schedule on a discrete-event model of
// the calibration lab: machines transition between uncalibrated,
// calibrated-idle, and busy; every transition is checked against the
// problem rules. It is an independent second implementation of
// feasibility (differential-tested against ise.Validate) and the
// source of the operational statistics (utilization, idle calibrated
// time) reported by the examples and tools.
package replay

import (
	"fmt"
	"sort"

	"calib/internal/ise"
)

// EventKind labels replay events.
type EventKind int

// Replay event kinds.
const (
	EvCalibrate EventKind = iota
	EvStart
	EvFinish
)

func (k EventKind) String() string {
	switch k {
	case EvCalibrate:
		return "calibrate"
	case EvStart:
		return "start"
	case EvFinish:
		return "finish"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one replay transition.
type Event struct {
	Time    ise.Time
	Machine int
	Kind    EventKind
	Job     int // -1 for calibrations
}

// MachineStats aggregates one machine's replay.
type MachineStats struct {
	Calibrations int
	// CalibratedTicks is the total usable time bought (Calibrations*T
	// minus nothing: calibrations never overlap on a machine).
	CalibratedTicks ise.Time
	// BusyTicks is the time spent executing jobs.
	BusyTicks ise.Time
	// Jobs is the number of jobs executed.
	Jobs int
}

// Report is the outcome of a replay.
type Report struct {
	// Feasible is true when the replay finished without any rule
	// violation; Violation holds the first violation otherwise.
	Feasible  bool
	Violation string
	// Events is the full transition log, time-ordered.
	Events []Event
	// PerMachine indexes stats by machine.
	PerMachine []MachineStats
	// CalibratedTicks and BusyTicks are the fleet totals; Utilization
	// is their ratio (0 when nothing was calibrated).
	CalibratedTicks ise.Time
	BusyTicks       ise.Time
	Utilization     float64
	// JobsCompleted counts jobs that finished by their deadline.
	JobsCompleted int
}

// Replay simulates s on inst and returns the report. Unlike
// ise.Validate it never short-circuits model checks into shared
// helpers: the replay walks each machine's timeline directly, so the
// two implementations fail independently.
func Replay(inst *ise.Instance, s *ise.Schedule) *Report {
	r := &Report{Feasible: true}
	fail := func(format string, args ...any) {
		if r.Feasible {
			r.Feasible = false
			r.Violation = fmt.Sprintf(format, args...)
		}
	}
	if s.Speed < 1 {
		fail("speed %d < 1", s.Speed)
		return r
	}
	machines := s.Machines
	if machines < 1 {
		fail("no machines")
		return r
	}
	r.PerMachine = make([]MachineStats, machines)

	// Build per-machine timelines.
	type seg struct {
		start, end ise.Time
		job        int // -1 for calibration
	}
	cals := make([][]seg, machines)
	runs := make([][]seg, machines)
	for _, c := range s.Calibrations {
		if c.Machine < 0 || c.Machine >= machines {
			fail("calibration on unknown machine %d", c.Machine)
			return r
		}
		cals[c.Machine] = append(cals[c.Machine], seg{c.Start, c.Start + inst.T, -1})
	}
	placed := make([]int, inst.N())
	for _, p := range s.Placements {
		if p.Job < 0 || p.Job >= inst.N() {
			fail("placement of unknown job %d", p.Job)
			return r
		}
		if p.Machine < 0 || p.Machine >= machines {
			fail("job %d on unknown machine %d", p.Job, p.Machine)
			return r
		}
		j := inst.Jobs[p.Job]
		if j.Processing%s.Speed != 0 {
			fail("job %d processing %d not divisible by speed %d", p.Job, j.Processing, s.Speed)
			return r
		}
		placed[p.Job]++
		runs[p.Machine] = append(runs[p.Machine], seg{p.Start, p.Start + j.Processing/s.Speed, p.Job})
	}
	for id, n := range placed {
		if n != 1 {
			fail("job %d placed %d times", id, n)
			return r
		}
	}

	for m := 0; m < machines; m++ {
		cs, rs := cals[m], runs[m]
		sort.Slice(cs, func(a, b int) bool { return cs[a].start < cs[b].start })
		sort.Slice(rs, func(a, b int) bool { return rs[a].start < rs[b].start })
		st := &r.PerMachine[m]
		st.Calibrations = len(cs)
		// Calibration spacing.
		for i := range cs {
			if i > 0 && cs[i].start < cs[i-1].end {
				fail("machine %d: calibrations at %d and %d overlap", m, cs[i-1].start, cs[i].start)
			}
			st.CalibratedTicks += inst.T
			r.Events = append(r.Events, Event{cs[i].start, m, EvCalibrate, -1})
		}
		// Walk runs: sequential, each inside one calibration, each
		// inside its window.
		ci := 0
		var prevEnd ise.Time
		for i, run := range rs {
			j := inst.Jobs[run.job]
			if i > 0 && run.start < prevEnd {
				fail("machine %d: job %d starts at %d before previous run ends at %d", m, run.job, run.start, prevEnd)
			}
			prevEnd = run.end
			if run.start < j.Release {
				fail("job %d starts at %d before release %d", run.job, run.start, j.Release)
			}
			if run.end > j.Deadline {
				fail("job %d ends at %d after deadline %d", run.job, run.end, j.Deadline)
			} else {
				r.JobsCompleted++
			}
			// Advance to the calibration that could contain this run.
			for ci < len(cs) && cs[ci].end < run.end {
				ci++
			}
			contained := false
			for k := ci; k < len(cs) && cs[k].start <= run.start; k++ {
				if cs[k].start <= run.start && run.end <= cs[k].end {
					contained = true
					break
				}
			}
			// ci may have advanced past a containing calibration when
			// runs nest oddly; rescan defensively on failure.
			if !contained {
				for k := range cs {
					if cs[k].start <= run.start && run.end <= cs[k].end {
						contained = true
						break
					}
				}
			}
			if !contained {
				fail("machine %d: job %d run [%d,%d) not inside any calibration", m, run.job, run.start, run.end)
			}
			st.BusyTicks += run.end - run.start
			st.Jobs++
			r.Events = append(r.Events, Event{run.start, m, EvStart, run.job})
			r.Events = append(r.Events, Event{run.end, m, EvFinish, run.job})
		}
		r.CalibratedTicks += st.CalibratedTicks
		r.BusyTicks += st.BusyTicks
	}
	sort.SliceStable(r.Events, func(a, b int) bool { return r.Events[a].Time < r.Events[b].Time })
	if r.CalibratedTicks > 0 {
		r.Utilization = float64(r.BusyTicks) / float64(r.CalibratedTicks)
	}
	if !r.Feasible {
		r.JobsCompleted = 0
	}
	return r
}
