package replay

import (
	"encoding/binary"
	"testing"

	"calib/internal/ise"
)

// decodeWorld deterministically derives an instance and a schedule
// (often invalid — that is the point) from fuzz bytes.
func decodeWorld(data []byte) (*ise.Instance, *ise.Schedule) {
	next := func() int64 {
		if len(data) < 2 {
			return 0
		}
		v := int64(binary.LittleEndian.Uint16(data[:2]))
		data = data[2:]
		return v
	}
	T := 2 + next()%30
	m := 1 + int(next()%4)
	inst := ise.NewInstance(T, m)
	nJobs := int(next() % 8)
	for i := 0; i < nJobs; i++ {
		p := 1 + next()%T
		r := next() % 100
		d := r + p + next()%40
		inst.AddJob(r, d, p)
	}
	s := ise.NewSchedule(1 + int(next()%6))
	nCals := int(next() % 8)
	for i := 0; i < nCals; i++ {
		s.Calibrate(int(next()%8), next()%120)
	}
	nPlace := int(next() % 10)
	for i := 0; i < nPlace; i++ {
		s.Place(int(next()%10), int(next()%8), next()%120)
	}
	return inst, s
}

// FuzzReplayAgreesWithValidator feeds arbitrary worlds to both
// feasibility implementations: neither may panic, and they must agree.
func FuzzReplayAgreesWithValidator(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 0, 1, 0, 2, 0, 3, 0, 0, 0, 40, 0, 5, 0})
	f.Add(make([]byte, 64))
	f.Add([]byte{8, 0, 2, 0, 3, 0, 2, 0, 10, 0, 9, 0, 2, 0, 3, 0, 0, 0, 5, 0, 1, 0, 0, 0, 0, 0, 2, 0, 1, 0, 0, 0, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, s := decodeWorld(data)
		if err := inst.Validate(); err != nil {
			return // only well-formed instances are in scope
		}
		vErr := ise.Validate(inst, s)
		rep := Replay(inst, s)
		if (vErr == nil) != rep.Feasible {
			t.Fatalf("disagreement: validator=%v, replay feasible=%v (%s)", vErr, rep.Feasible, rep.Violation)
		}
	})
}
