package replay

import (
	"math/rand"
	"testing"

	"calib/internal/core"
	"calib/internal/ise"
	"calib/internal/workload"
)

func TestReplayFeasible(t *testing.T) {
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 20, 5)
	in.AddJob(0, 20, 5)
	s := ise.NewSchedule(2)
	s.Calibrate(0, 0)
	s.Place(0, 0, 0)
	s.Place(1, 0, 5)
	r := Replay(in, s)
	if !r.Feasible {
		t.Fatalf("feasible schedule rejected: %s", r.Violation)
	}
	if r.JobsCompleted != 2 {
		t.Errorf("completed = %d, want 2", r.JobsCompleted)
	}
	if r.CalibratedTicks != 10 || r.BusyTicks != 10 {
		t.Errorf("ticks = %d/%d, want 10/10", r.BusyTicks, r.CalibratedTicks)
	}
	if r.Utilization != 1.0 {
		t.Errorf("utilization = %v, want 1.0", r.Utilization)
	}
	if len(r.Events) != 5 { // 1 calibrate + 2 starts + 2 finishes
		t.Errorf("events = %d, want 5", len(r.Events))
	}
}

func TestReplayDetectsViolations(t *testing.T) {
	build := func() (*ise.Instance, *ise.Schedule) {
		in := ise.NewInstance(10, 1)
		in.AddJob(2, 20, 5)
		s := ise.NewSchedule(1)
		s.Calibrate(0, 0)
		s.Place(0, 0, 2)
		return in, s
	}
	cases := []struct {
		name   string
		mutate func(in *ise.Instance, s *ise.Schedule)
	}{
		{"early start", func(in *ise.Instance, s *ise.Schedule) { s.Placements[0].Start = 1 }},
		{"late finish", func(in *ise.Instance, s *ise.Schedule) { in.Jobs[0].Deadline = 6 }},
		{"no calibration", func(in *ise.Instance, s *ise.Schedule) { s.Calibrations = nil }},
		{"leaks out of calibration", func(in *ise.Instance, s *ise.Schedule) { s.Placements[0].Start = 6 }},
		{"double placement", func(in *ise.Instance, s *ise.Schedule) { s.Place(0, 0, 2) }},
		{"overlapping calibrations", func(in *ise.Instance, s *ise.Schedule) { s.Calibrate(0, 5) }},
		{"bad machine", func(in *ise.Instance, s *ise.Schedule) { s.Placements[0].Machine = 7 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, s := build()
			tc.mutate(in, s)
			if r := Replay(in, s); r.Feasible {
				t.Error("violation not detected")
			}
		})
	}
}

// TestReplayAgreesWithValidator is the differential property test: on
// random schedules — feasible witnesses, solver outputs, and randomly
// mutated corruptions of both — the replay simulator and ise.Validate
// must agree on feasibility.
func TestReplayAgreesWithValidator(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	checked, corrupted := 0, 0
	for trial := 0; trial < 60; trial++ {
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + rng.Intn(2),
			T:                      8,
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.AnyWindow,
		})
		var sched *ise.Schedule
		if rng.Intn(2) == 0 {
			sched = witness
		} else {
			res, err := core.Solve(inst, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sched = res.Schedule
		}
		// Randomly corrupt half of the schedules.
		if rng.Intn(2) == 0 && len(sched.Placements) > 0 {
			corrupted++
			switch rng.Intn(4) {
			case 0:
				i := rng.Intn(len(sched.Placements))
				sched.Placements[i].Start += ise.Time(rng.Intn(7) - 3)
			case 1:
				i := rng.Intn(len(sched.Placements))
				sched.Placements[i].Machine = rng.Intn(sched.Machines + 1)
			case 2:
				if len(sched.Calibrations) > 0 {
					i := rng.Intn(len(sched.Calibrations))
					sched.Calibrations[i].Start += ise.Time(rng.Intn(9) - 4)
				}
			case 3:
				i := rng.Intn(len(sched.Placements))
				sched.Placements = append(sched.Placements, sched.Placements[i])
			}
		}
		checked++
		vErr := ise.Validate(inst, sched)
		rep := Replay(inst, sched)
		if (vErr == nil) != rep.Feasible {
			t.Fatalf("trial %d: validator says %v, simulator says feasible=%v (%s)",
				trial, vErr, rep.Feasible, rep.Violation)
		}
	}
	if corrupted == 0 {
		t.Error("no corrupted schedules generated; test too weak")
	}
	t.Logf("checked %d schedules (%d corrupted)", checked, corrupted)
}

func TestReplayUtilizationOfSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, _ := workload.Mixed(rng, 12, 1, 10, 0.5)
	res, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Replay(inst, res.Schedule)
	if !r.Feasible {
		t.Fatalf("solver schedule rejected: %s", r.Violation)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization = %v, want in (0, 1]", r.Utilization)
	}
	if r.JobsCompleted != inst.N() {
		t.Errorf("completed %d of %d jobs", r.JobsCompleted, inst.N())
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EvCalibrate, EvStart, EvFinish, EventKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}
