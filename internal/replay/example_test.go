package replay_test

import (
	"fmt"

	"calib/internal/ise"
	"calib/internal/replay"
)

// Example replays a two-job schedule and reads the utilization.
func Example() {
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 20, 4)
	inst.AddJob(0, 20, 6)
	s := ise.NewSchedule(1)
	s.Calibrate(0, 0)
	s.Place(0, 0, 0)
	s.Place(1, 0, 4)
	rep := replay.Replay(inst, s)
	fmt.Println("feasible:", rep.Feasible)
	fmt.Println("jobs completed:", rep.JobsCompleted)
	fmt.Printf("utilization: %.0f%%\n", 100*rep.Utilization)
	for _, ev := range rep.Events {
		fmt.Printf("t=%-3d %s", ev.Time, ev.Kind)
		if ev.Job >= 0 {
			fmt.Printf(" job %d", ev.Job)
		}
		fmt.Println()
	}
	// Output:
	// feasible: true
	// jobs completed: 2
	// utilization: 100%
	// t=0   calibrate
	// t=0   start job 0
	// t=4   finish job 0
	// t=4   start job 1
	// t=10  finish job 1
}
