package improve

import (
	"math/rand"
	"testing"

	"calib/internal/core"
	"calib/internal/heur"
	"calib/internal/ise"
	"calib/internal/workload"
)

func TestRunMergesMergeable(t *testing.T) {
	// Two calibrations whose jobs all fit into one.
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 30, 3)
	in.AddJob(0, 30, 4)
	s := ise.NewSchedule(2)
	s.Calibrate(0, 0)
	s.Calibrate(1, 0)
	s.Place(0, 0, 0)
	s.Place(1, 1, 0)
	res, err := Run(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1", res.Schedule.NumCalibrations())
	}
	if res.Removed != 1 {
		t.Errorf("removed = %d, want 1", res.Removed)
	}
}

func TestRunKeepsUnmergeable(t *testing.T) {
	// Two full calibrations: nothing to remove.
	in := ise.NewInstance(10, 2)
	in.AddJob(0, 10, 10)
	in.AddJob(0, 10, 10)
	s := ise.NewSchedule(2)
	s.Calibrate(0, 0)
	s.Calibrate(1, 0)
	s.Place(0, 0, 0)
	s.Place(1, 1, 0)
	res, err := Run(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumCalibrations() != 2 || res.Removed != 0 {
		t.Errorf("result %+v, want 2 calibrations kept", res)
	}
}

func TestRunRejectsInfeasibleInput(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 5)
	s := ise.NewSchedule(1) // missing placement
	if _, err := Run(in, s); err == nil {
		t.Error("infeasible input accepted")
	}
}

// TestRunImprovesPipelineOutputs: on random mixed workloads, improving
// the paper pipeline's schedule must keep feasibility, never increase
// calibrations, and usually strip a lot of padding.
func TestRunImprovesPipelineOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	totalBefore, totalAfter := 0, 0
	for trial := 0; trial < 8; trial++ {
		inst, _ := workload.Mixed(rng, 12, 1, 10, 0.5)
		pr, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(inst, pr.Schedule)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		before, after := pr.Schedule.NumCalibrations(), res.Schedule.NumCalibrations()
		if after > before {
			t.Errorf("trial %d: improvement increased calibrations (%d > %d)", trial, after, before)
		}
		totalBefore += before
		totalAfter += after
	}
	if totalAfter >= totalBefore {
		t.Errorf("no improvement at all across trials (%d -> %d); local search inert", totalBefore, totalAfter)
	}
	t.Logf("calibrations %d -> %d (-%d%%)", totalBefore, totalAfter, 100*(totalBefore-totalAfter)/totalBefore)
}

// TestRunOnLazyOutputs: improving an already-good schedule should be
// safe (and often a no-op).
func TestRunOnLazyOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		inst, _ := workload.Mixed(rng, 12, 1, 10, 0.5)
		ls, err := heur.Lazy(inst, heur.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(inst, ls)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Schedule.NumCalibrations() > ls.NumCalibrations() {
			t.Errorf("trial %d: got worse", trial)
		}
	}
}

func TestRunRejectsSpeedSchedules(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 4)
	s := ise.NewSchedule(1)
	s.Speed = 2
	s.Calibrate(0, 0)
	s.Place(0, 0, 0)
	if _, err := Run(in, s); err == nil {
		t.Error("speed schedule accepted")
	}
}
