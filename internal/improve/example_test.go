package improve_test

import (
	"fmt"

	"calib/internal/improve"
	"calib/internal/ise"
)

// Example merges two mergeable calibrations into one.
func Example() {
	inst := ise.NewInstance(10, 2)
	inst.AddJob(0, 30, 3)
	inst.AddJob(0, 30, 4)
	s := ise.NewSchedule(2)
	s.Calibrate(0, 0)
	s.Calibrate(1, 0)
	s.Place(0, 0, 0)
	s.Place(1, 1, 0)
	res, err := improve.Run(inst, s)
	if err != nil {
		panic(err)
	}
	fmt.Println("calibrations:", s.NumCalibrations(), "->", res.Schedule.NumCalibrations())
	// Output:
	// calibrations: 2 -> 1
}
