package improve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestQuickImproveSafety: for arbitrary feasible inputs (planted
// witnesses), local search keeps feasibility and never increases the
// calibration count, and a second application is a no-op (fixpoint).
func TestQuickImproveSafety(t *testing.T) {
	prop := func(seed int64, mRaw, TRaw, winRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + int(mRaw%3),
			T:                      ise.Time(3 + TRaw%12),
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.WindowKind(winRaw % 3),
		})
		res, err := Run(inst, witness)
		if err != nil {
			return false
		}
		if ise.Validate(inst, res.Schedule) != nil {
			return false
		}
		if res.Schedule.NumCalibrations() > witness.NumCalibrations() {
			return false
		}
		again, err := Run(inst, res.Schedule)
		if err != nil {
			return false
		}
		return again.Removed == 0 &&
			again.Schedule.NumCalibrations() == res.Schedule.NumCalibrations()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
