// Package improve post-processes feasible ISE schedules with local
// search: it repeatedly tries to empty a calibration by relocating its
// jobs into the free space of the remaining calibrations, dropping the
// calibration when it succeeds. The result is never worse than the
// input, stays feasible by construction (and is re-validated), and in
// practice strips much of the worst-case padding the approximation
// pipeline carries.
package improve

import (
	"fmt"
	"sort"

	"calib/internal/ise"
)

// Result is the outcome of Run.
type Result struct {
	// Schedule is the improved feasible schedule.
	Schedule *ise.Schedule
	// Removed counts eliminated calibrations; Passes counts fixpoint
	// iterations.
	Removed, Passes int
}

// cal is a mutable calibration with its runs, sorted by start.
type cal struct {
	machine int
	start   ise.Time
	runs    []run
}

type run struct {
	job        int
	start, end ise.Time
}

// Run improves a feasible unit-speed schedule for inst. It returns an
// error if the input is infeasible (improvement only works from a
// feasible point) or not unit speed.
func Run(inst *ise.Instance, s *ise.Schedule) (*Result, error) {
	if s.Speed != 1 {
		return nil, fmt.Errorf("improve: requires unit speed, got %d", s.Speed)
	}
	if err := ise.Validate(inst, s); err != nil {
		return nil, fmt.Errorf("improve: input schedule infeasible: %w", err)
	}
	// Build mutable calibration structures.
	cals := make([]*cal, 0, len(s.Calibrations))
	index := map[ise.Calibration]*cal{}
	for _, c := range s.Calibrations {
		cc := &cal{machine: c.Machine, start: c.Start}
		cals = append(cals, cc)
		index[c] = cc
	}
	calsByM := s.CalibrationsByMachine()
	for _, p := range s.Placements {
		j := inst.Jobs[p.Job]
		starts := calsByM[p.Machine]
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > p.Start })
		cc := index[ise.Calibration{Machine: p.Machine, Start: starts[i-1]}]
		cc.runs = append(cc.runs, run{job: p.Job, start: p.Start, end: p.Start + j.Processing})
	}
	for _, c := range cals {
		sort.Slice(c.runs, func(a, b int) bool { return c.runs[a].start < c.runs[b].start })
	}

	res := &Result{}
	for {
		res.Passes++
		if !pass(inst, &cals, res) {
			break
		}
	}
	out := ise.NewSchedule(s.Machines)
	out.Speed = 1
	for _, c := range cals {
		out.Calibrate(c.machine, c.start)
		for _, r := range c.runs {
			out.Place(r.job, c.machine, r.start)
		}
	}
	if err := ise.Validate(inst, out); err != nil {
		return nil, fmt.Errorf("improve: internal error, produced infeasible schedule: %w", err)
	}
	res.Schedule = out
	return res, nil
}

// pass attempts to eliminate one calibration (least-loaded first);
// reports whether it removed one.
func pass(inst *ise.Instance, cals *[]*cal, res *Result) bool {
	order := make([]int, len(*cals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return load((*cals)[order[a]]) < load((*cals)[order[b]])
	})
	for _, vi := range order {
		victim := (*cals)[vi]
		if tryEvacuate(inst, *cals, victim) {
			next := make([]*cal, 0, len(*cals)-1)
			for _, c := range *cals {
				if c != victim {
					next = append(next, c)
				}
			}
			*cals = next
			res.Removed++
			return true
		}
	}
	return false
}

func load(c *cal) ise.Time {
	var w ise.Time
	for _, r := range c.runs {
		w += r.end - r.start
	}
	return w
}

// tryEvacuate relocates every run of victim into other calibrations;
// on success the moves are committed and victim is left empty. All-or-
// nothing: failed attempts roll back.
func tryEvacuate(inst *ise.Instance, cals []*cal, victim *cal) bool {
	type move struct {
		target *cal
		r      run
	}
	var moves []move
	// Relocate the longest jobs first (hardest to place).
	pending := append([]run(nil), victim.runs...)
	sort.Slice(pending, func(a, b int) bool {
		return (pending[a].end - pending[a].start) > (pending[b].end - pending[b].start)
	})
	rollback := func() {
		for _, mv := range moves {
			removeRun(mv.target, mv.r)
		}
	}
	for _, r := range pending {
		j := inst.Jobs[r.job]
		placed := false
		for _, c := range cals {
			if c == victim {
				continue
			}
			if start, ok := fit(inst.T, c, j); ok {
				nr := run{job: r.job, start: start, end: start + j.Processing}
				insertRun(c, nr)
				moves = append(moves, move{target: c, r: nr})
				placed = true
				break
			}
		}
		if !placed {
			rollback()
			return false
		}
	}
	victim.runs = nil
	return true
}

// fit returns the latest feasible start of job j inside calibration c.
func fit(T ise.Time, c *cal, j ise.Job) (ise.Time, bool) {
	lo := c.start
	if j.Release > lo {
		lo = j.Release
	}
	hi := c.start + T
	if j.Deadline < hi {
		hi = j.Deadline
	}
	if hi-lo < j.Processing {
		return 0, false
	}
	prevStart := hi
	for k := len(c.runs) - 1; k >= -1; k-- {
		gapEnd := prevStart
		var gapStart ise.Time
		if k >= 0 {
			gapStart = c.runs[k].end
			prevStart = c.runs[k].start
		} else {
			gapStart = lo
		}
		if gapStart < lo {
			gapStart = lo
		}
		if gapEnd > hi {
			gapEnd = hi
		}
		if gapEnd-gapStart >= j.Processing {
			return gapEnd - j.Processing, true
		}
		if k >= 0 && c.runs[k].start <= lo {
			break
		}
	}
	return 0, false
}

func insertRun(c *cal, r run) {
	c.runs = append(c.runs, r)
	sort.Slice(c.runs, func(a, b int) bool { return c.runs[a].start < c.runs[b].start })
}

func removeRun(c *cal, r run) {
	for i := range c.runs {
		if c.runs[i] == r {
			c.runs = append(c.runs[:i], c.runs[i+1:]...)
			return
		}
	}
}
