package shortwin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestQuickShortwinFeasibleWithinAccounting: for arbitrary planted
// short-window instances and gammas, Algorithm 4+5 must produce a
// feasible schedule within the Lemma 19 accounting.
func TestQuickShortwinFeasibleWithinAccounting(t *testing.T) {
	prop := func(seed int64, mRaw, TRaw, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + int(mRaw%3),
			T:                      ise.Time(3 + TRaw%12),
			CalibrationsPerMachine: 1 + rng.Intn(2),
			Window:                 workload.ShortWindow,
		})
		gamma := 2 + int(gRaw%3)
		res, err := Solve(inst, Options{Gamma: gamma})
		if err != nil {
			return false
		}
		if ise.Validate(inst, res.Schedule) != nil {
			return false
		}
		sumW := 0
		for _, iv := range res.Intervals {
			sumW += iv.MMMachines
		}
		return res.Schedule.NumCalibrations() <= 4*gamma*sumW
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
