// Package shortwin implements the short-window ISE algorithm of
// Fineman & Sheridan (SPAA 2015), Section 4: partition time into
// length-2*gamma*T intervals at offsets 0 and gamma*T (Algorithm 4),
// solve each interval with a machine-minimization black box, and
// transform each MM schedule into an ISE schedule by calibrating every
// MM machine on the kT grid and giving each calibration-crossing job a
// dedicated calibration on a parity-split extra machine (Algorithm 5).
//
// With an alpha-approximate MM box the result uses at most
// 6*alpha*w* machines and 16*gamma*alpha*C* calibrations (Theorem 20).
// The package follows the paper's harder model (footnote 3):
// calibrations on one machine must be at least T apart.
package shortwin

import (
	"fmt"
	"sort"

	"calib/internal/ise"
	"calib/internal/mm"
	"calib/internal/obs"
	"calib/internal/robust"
)

// Gamma is the short-window length bound in units of T: short jobs
// have d_j - r_j < Gamma*T (Definition 1 fixes Gamma = 2).
const Gamma = 2

// Options configures the short-window solver.
type Options struct {
	// MM is the machine-minimization black box (Theorem 1's A);
	// defaults to mm.Greedy{}.
	MM mm.Solver
	// Gamma overrides the short-window bound: jobs must have
	// d_j - r_j < Gamma*T and intervals have length 2*Gamma*T.
	// 0 means the paper's Gamma = 2; values above 2 are valid (the
	// paper's Section 3 remark) and weaken the constants by the same
	// factor.
	Gamma int
	// TrimIdle drops calibrations that end up hosting no job. The
	// paper's Algorithm 5 calibrates every MM machine 2*gamma times
	// unconditionally; trimming is a feasibility-preserving practical
	// optimization measured by the ablation experiments.
	TrimIdle bool
	// Span, when non-nil, parents one "mm" span per partition interval.
	Span *obs.Span
	// Metrics is threaded into the LP-based MM boxes (mm.WithMetrics);
	// nil disables telemetry at zero cost.
	Metrics *obs.Registry
	// Control carries cancellation/budget limits into the per-interval
	// MM solves (mm.WithControl) and is polled between intervals. nil
	// means no limits.
	Control *robust.Control
}

// IntervalStat describes one partition interval's subproblem, for the
// experiment tables.
type IntervalStat struct {
	// Pass is 0 (offset 0) or 1 (offset gamma*T).
	Pass int
	// Start is the interval's start time t; it spans [t, t+2*gamma*T).
	Start ise.Time
	// Jobs is the number of jobs nested in the interval.
	Jobs int
	// MMMachines is the machine count w found by the black box.
	MMMachines int
	// Crossing is the number of calibration-crossing jobs.
	Crossing int
}

// Result is the output of Solve.
type Result struct {
	// Schedule is the feasible ISE schedule for the instance.
	Schedule *ise.Schedule
	// Intervals holds per-interval statistics in scan order.
	Intervals []IntervalStat
	// MaxW[pass] is the maximum MM machine count over the pass's
	// intervals (each pass reuses one block of 3*MaxW machines).
	MaxW [2]int
}

// Solve runs the complete short-window algorithm on an instance whose
// jobs all have short windows (d_j - r_j < Gamma*T).
func Solve(inst *ise.Instance, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	g := ise.Time(opts.Gamma)
	if g == 0 {
		g = Gamma
	}
	if g < 2 {
		return nil, fmt.Errorf("shortwin: gamma = %d, want >= 2", g)
	}
	for _, j := range inst.Jobs {
		if j.WindowLength() >= g*inst.T {
			return nil, fmt.Errorf("shortwin: %v has window >= gamma*T = %d", j, g*inst.T)
		}
	}
	box := opts.MM
	if box == nil {
		box = mm.Greedy{}
	}
	box = mm.WithMetrics(box, opts.Metrics)
	box = mm.WithControl(box, opts.Control)

	// Algorithm 4: assign each job to a pass and interval. The paper
	// anchors the grid at t = 0; we anchor at the earliest release
	// instead — any global anchor satisfies the proofs, and this one
	// makes the algorithm translation-covariant (verified by the
	// metamorphic tests) and correct for negative times.
	span := 2 * g * inst.T
	anchor := ise.Time(0)
	if inst.N() > 0 {
		anchor, _ = inst.Span()
	}
	type ikey struct {
		pass  int
		start ise.Time
	}
	groups := map[ikey][]int{}
	var keys []ikey
	for id, j := range inst.Jobs {
		placed := false
		rel := j.Release - anchor
		for pass := 0; pass < 2 && !placed; pass++ {
			offset := ise.Time(pass) * g * inst.T
			if rel < offset {
				continue
			}
			k := (rel - offset) / span
			t := anchor + offset + k*span
			if t <= j.Release && j.Deadline <= t+span {
				key := ikey{pass, t}
				if _, ok := groups[key]; !ok {
					keys = append(keys, key)
				}
				groups[key] = append(groups[key], id)
				placed = true
			}
		}
		if !placed {
			// Lemma 16 proves this cannot happen for short jobs.
			return nil, fmt.Errorf("shortwin: %v not nested in any partition interval", j)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].pass != keys[b].pass {
			return keys[a].pass < keys[b].pass
		}
		return keys[a].start < keys[b].start
	})

	// Solve every interval with the MM black box.
	type interval struct {
		key  ikey
		ids  []int // original job IDs, index-aligned with sub.Jobs
		sub  *ise.Instance
		mmS  *mm.Schedule
		stat IntervalStat
	}
	res := &Result{}
	var ivs []interval
	for _, key := range keys {
		// The interval loop is shortwin's long-running loop: one MM
		// solve per interval, so check between intervals (the box's own
		// control covers the inside).
		if err := opts.Control.ErrPhase("shortwin"); err != nil {
			return nil, err
		}
		ids := groups[key]
		sub := ise.NewInstance(inst.T, inst.M)
		for _, id := range ids {
			j := inst.Jobs[id]
			sub.AddJob(j.Release, j.Deadline, j.Processing)
		}
		sp := opts.Span.Start("mm")
		sp.SetStr("box", box.Name())
		sp.SetInt("pass", int64(key.pass))
		sp.SetInt("start", int64(key.start))
		sp.SetInt("jobs", int64(len(ids)))
		ms, err := box.Solve(sub)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("shortwin: MM box %q on interval [%d,%d): %w", box.Name(), key.start, key.start+span, err)
		}
		sp.SetInt("machines", int64(ms.Machines))
		sp.End()
		if err := mm.Validate(sub, ms); err != nil {
			return nil, fmt.Errorf("shortwin: MM box %q returned invalid schedule: %w", box.Name(), err)
		}
		if ms.Machines > res.MaxW[key.pass] {
			res.MaxW[key.pass] = ms.Machines
		}
		ivs = append(ivs, interval{
			key: key, ids: ids, sub: sub, mmS: ms,
			stat: IntervalStat{Pass: key.pass, Start: key.start, Jobs: len(ids), MMMachines: ms.Machines},
		})
	}

	// Emit the ISE schedule. Pass p's machines occupy one block of
	// 3*MaxW[p]; within an interval, MM machine q maps to base+q, and
	// crossing jobs go to base + w + q (even k) or base + 2w + q
	// (odd k), with w = MaxW[pass] for a uniform layout.
	base := [2]int{0, 3 * res.MaxW[0]}
	total := 3*res.MaxW[0] + 3*res.MaxW[1]
	if total == 0 {
		total = 1
	}
	out := ise.NewSchedule(total)
	for i := range ivs {
		iv := &ivs[i]
		w := res.MaxW[iv.key.pass]
		b := base[iv.key.pass]
		t := iv.key.start
		used := map[ise.Calibration]bool{} // grid calibrations hosting a job
		// Placements first (to know which grid calibrations are used).
		type cal = ise.Calibration
		var crossingCals []cal
		for _, p := range iv.mmS.Placements {
			j := iv.sub.Jobs[p.Job]
			origID := iv.ids[p.Job]
			k := (p.Start - t) / inst.T
			crossing := p.Start+j.Processing > t+(k+1)*inst.T
			switch {
			case !crossing:
				out.Place(origID, b+p.Machine, p.Start)
				used[cal{Machine: b + p.Machine, Start: t + k*inst.T}] = true
			case k%2 == 0:
				m := b + w + p.Machine
				out.Place(origID, m, p.Start)
				crossingCals = append(crossingCals, cal{Machine: m, Start: p.Start})
				iv.stat.Crossing++
			default:
				m := b + 2*w + p.Machine
				out.Place(origID, m, p.Start)
				crossingCals = append(crossingCals, cal{Machine: m, Start: p.Start})
				iv.stat.Crossing++
			}
		}
		// Grid calibrations: every MM machine at t + kT,
		// k = 0..2*gamma-1 (paper-faithful), or only the used ones
		// when trimming.
		for q := 0; q < iv.mmS.Machines; q++ {
			for k := ise.Time(0); k < 2*g; k++ {
				c := cal{Machine: b + q, Start: t + k*inst.T}
				if opts.TrimIdle && !used[c] {
					continue
				}
				out.Calibrate(c.Machine, c.Start)
			}
		}
		for _, c := range crossingCals {
			out.Calibrate(c.Machine, c.Start)
		}
		res.Intervals = append(res.Intervals, iv.stat)
	}
	res.Schedule = out
	return res, nil
}
