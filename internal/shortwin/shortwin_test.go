package shortwin

import (
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/mm"
	"calib/internal/workload"
)

func TestSolveRejectsLongJobs(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 5) // window = 2T: long
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("long-window job accepted")
	}
}

func TestSolveEmpty(t *testing.T) {
	in := ise.NewInstance(10, 1)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumCalibrations() != 0 || len(res.Schedule.Placements) != 0 {
		t.Errorf("empty instance produced non-empty schedule")
	}
}

func TestSolveSingleInterval(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 15, 5)
	in.AddJob(2, 18, 6)
	in.AddJob(5, 20, 4)
	res, err := Solve(in, Options{MM: mm.Exact{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, res.Schedule); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no interval stats")
	}
}

// TestSolveEndToEnd is the main property test: on planted short-window
// instances the algorithm must produce feasible schedules within the
// accounting of Lemma 19 / Theorem 20.
func TestSolveEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	boxes := []mm.Solver{mm.Greedy{}, mm.Exact{}}
	for trial := 0; trial < 15; trial++ {
		m := 1 + rng.Intn(3)
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               m,
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.ShortWindow,
		})
		if inst.N() > 10 {
			// Keep Exact's search cheap: drop surplus jobs, keeping IDs
			// contiguous.
			inst.Jobs = inst.Jobs[:10]
		}
		for _, box := range boxes {
			res, err := Solve(inst, Options{MM: box})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, box.Name(), err)
			}
			if err := ise.Validate(inst, res.Schedule); err != nil {
				t.Fatalf("trial %d %s: infeasible: %v", trial, box.Name(), err)
			}
			// Lemma 19 accounting: at most 4*gamma*w_i calibrations per
			// interval on 3*w machines per pass.
			sumW := 0
			for _, iv := range res.Intervals {
				sumW += iv.MMMachines
			}
			if got, bound := res.Schedule.NumCalibrations(), 4*Gamma*sumW; got > bound {
				t.Errorf("trial %d %s: %d calibrations > 4*gamma*sum(w) = %d", trial, box.Name(), got, bound)
			}
			if got, bound := res.Schedule.Machines, 3*(res.MaxW[0]+res.MaxW[1]); got > bound && bound > 0 {
				t.Errorf("trial %d %s: %d machines > %d", trial, box.Name(), got, bound)
			}
			// With the exact box, each interval's w_i <= m (the planted
			// witness restricted to the interval is feasible on m
			// machines), so machines <= 6m (Theorem 20 with alpha = 1).
			if box.Name() == "exact-bb" {
				if res.Schedule.Machines > 6*m {
					t.Errorf("trial %d: %d machines > 6m = %d", trial, res.Schedule.Machines, 6*m)
				}
			}
		}
	}
}

func TestTrimIdleKeepsFeasibilityAndSaves(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + rng.Intn(2),
			T:                      10,
			CalibrationsPerMachine: 2,
			Window:                 workload.ShortWindow,
		})
		full, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		trim, err := Solve(inst, Options{TrimIdle: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := ise.Validate(inst, trim.Schedule); err != nil {
			t.Fatalf("trial %d: trimmed schedule infeasible: %v", trial, err)
		}
		if trim.Schedule.NumCalibrations() > full.Schedule.NumCalibrations() {
			t.Errorf("trial %d: trimming increased calibrations (%d > %d)",
				trial, trim.Schedule.NumCalibrations(), full.Schedule.NumCalibrations())
		}
	}
}

func TestCrossingAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sawCrossing := false
	for trial := 0; trial < 10; trial++ {
		inst := workload.CrossingAdversarial(rng, 8, 2, 10)
		res, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		for _, iv := range res.Intervals {
			if iv.Crossing > 0 {
				sawCrossing = true
			}
		}
	}
	if !sawCrossing {
		t.Error("adversarial workload never produced a crossing job; generator too weak")
	}
}

func TestPartitionCoversBoundaryJobs(t *testing.T) {
	// A job whose window straddles a grid boundary (a multiple of
	// 2*gamma*T from the anchor, which is the earliest release) must
	// land in the offset pass (Lemma 16).
	const T = 10
	in := ise.NewInstance(T, 1)
	in.AddJob(0, 5, 2)                     // pins the anchor at 0
	in.AddJob(2*Gamma*T-5, 2*Gamma*T+5, 3) // straddles 40
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	foundPass1 := false
	for _, iv := range res.Intervals {
		if iv.Pass == 1 {
			foundPass1 = true
		}
	}
	if !foundPass1 {
		t.Errorf("boundary job not handled by pass 1: %+v", res.Intervals)
	}
}

func TestNegativeReleasesSupported(t *testing.T) {
	// The anchored grid must cope with negative times (the 0-anchored
	// paper formulation could not).
	in := ise.NewInstance(10, 1)
	in.AddJob(-50, -35, 4)
	in.AddJob(-20, -8, 5)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}
