package shortwin

import (
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

func TestGammaRejectsBelowTwo(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 12, 3)
	if _, err := Solve(in, Options{Gamma: 1}); err == nil {
		t.Error("gamma=1 accepted")
	}
}

func TestGammaThreeAcceptsMediumWindows(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 25, 5) // window 25 in [2T, 3T): long under gamma=2, short under gamma=3
	if _, err := Solve(in, Options{}); err == nil {
		t.Fatal("gamma=2 should reject a window >= 2T")
	}
	res, err := Solve(in, Options{Gamma: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}

// TestGammaSweepFeasible runs the short-window algorithm at several
// gammas over random instances whose windows fit each gamma.
func TestGammaSweepFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, gamma := range []int{2, 3, 4} {
		for trial := 0; trial < 6; trial++ {
			inst, _ := workload.Planted(rng, workload.PlantedConfig{
				Machines:               1 + rng.Intn(2),
				T:                      10,
				CalibrationsPerMachine: 2,
				Window:                 workload.ShortWindow, // windows < 2T <= gamma*T
			})
			res, err := Solve(inst, Options{Gamma: gamma})
			if err != nil {
				t.Fatalf("gamma=%d trial %d: %v", gamma, trial, err)
			}
			if err := ise.Validate(inst, res.Schedule); err != nil {
				t.Fatalf("gamma=%d trial %d: infeasible: %v", gamma, trial, err)
			}
			// Lemma 19 accounting generalizes: <= 4*gamma*sum(w).
			sumW := 0
			for _, iv := range res.Intervals {
				sumW += iv.MMMachines
			}
			if got := res.Schedule.NumCalibrations(); got > 4*gamma*sumW {
				t.Errorf("gamma=%d: %d calibrations > 4*gamma*sumW = %d", gamma, got, 4*gamma*sumW)
			}
		}
	}
}
