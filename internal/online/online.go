// Package online implements an online variant of calibration
// scheduling, an extension beyond the paper (whose algorithms are
// offline): jobs are revealed at their release times, and all
// decisions — when to calibrate, where to place a job — are
// irrevocable and may only use already-revealed information.
// Calibrations can only be started at or after the current time (no
// retroactive calibration).
//
// The implemented policy, Lazy, is the online analogue of the lazy
// heuristic: every revealed job is deferred to its last safe decision
// moment (the latest start among free slots of existing calibrations,
// or d_j - p_j when a new calibration would be needed — opening it
// exactly then is still feasible and maximally lazy). Deferring
// maximizes the information available when the expensive decision is
// made. Experiment T14 measures the price of not knowing the future
// against the offline heuristic and the lower bound.
package online

import (
	"container/heap"
	"fmt"
	"sort"

	"calib/internal/ise"
)

// calibration is an open calibration with its occupied intervals.
type calibration struct {
	machine int
	start   ise.Time
	runs    []run
}

type run struct {
	job        int
	start, end ise.Time
}

// state is the online scheduler's committed world.
type state struct {
	inst     *ise.Instance
	machines [][]*calibration // per machine, sorted by start
	sched    *ise.Schedule
}

// Lazy runs the online lazy policy over the instance's release
// sequence and returns the resulting feasible schedule. Machines grow
// as needed (the online setting cannot bound them in advance).
func Lazy(inst *ise.Instance) (*ise.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	st := &state{inst: inst, sched: ise.NewSchedule(1)}

	// Event queue: job releases, then per-job decision triggers.
	releases := make([]int, inst.N())
	for i := range releases {
		releases[i] = i
	}
	sort.Slice(releases, func(a, b int) bool {
		ja, jb := inst.Jobs[releases[a]], inst.Jobs[releases[b]]
		if ja.Release != jb.Release {
			return ja.Release < jb.Release
		}
		return ja.ID < jb.ID
	})
	next := 0
	pending := &triggerHeap{}
	for next < len(releases) || pending.Len() > 0 {
		// Advance to the next event: a release or a trigger.
		var now ise.Time
		switch {
		case pending.Len() == 0:
			now = inst.Jobs[releases[next]].Release
		case next == len(releases):
			now = (*pending)[0].at
		default:
			now = inst.Jobs[releases[next]].Release
			if t := (*pending)[0].at; t < now {
				now = t
			}
		}
		// Reveal newly released jobs and compute their triggers.
		for next < len(releases) && inst.Jobs[releases[next]].Release <= now {
			id := releases[next]
			next++
			j := inst.Jobs[id]
			heap.Push(pending, trigger{job: id, at: j.Deadline - j.Processing})
		}
		// Fire all triggers due now (they are final: the decision
		// deadline d_j - p_j never moves).
		for pending.Len() > 0 && (*pending)[0].at <= now {
			tg := heap.Pop(pending).(trigger)
			if err := st.place(tg.job, now); err != nil {
				return nil, err
			}
		}
	}
	st.sched.Machines = maxInt(len(st.machines), 1)
	return st.sched, nil
}

// place commits job id at time now: into an existing calibration's
// free space if possible (latest feasible start, but not before now),
// otherwise into a freshly opened calibration starting now.
func (st *state) place(id int, now ise.Time) error {
	j := st.inst.Jobs[id]
	// Try existing calibrations.
	var bestCal *calibration
	var bestStart ise.Time
	for _, mc := range st.machines {
		for _, c := range mc {
			if s, ok := fit(st.inst.T, c, j, now); ok {
				if bestCal == nil || s > bestStart {
					bestCal, bestStart = c, s
				}
			}
		}
	}
	if bestCal != nil {
		insertRun(bestCal, run{job: id, start: bestStart, end: bestStart + j.Processing})
		st.sched.Place(id, bestCal.machine, bestStart)
		return nil
	}
	// Open a new calibration at now on a machine whose calibrations
	// are at least T away, or a new machine.
	calStart := now
	machine := -1
	for mi, mc := range st.machines {
		ok := true
		for _, c := range mc {
			d := calStart - c.start
			if d < 0 {
				d = -d
			}
			if d < st.inst.T {
				ok = false
				break
			}
		}
		if ok {
			machine = mi
			break
		}
	}
	if machine < 0 {
		st.machines = append(st.machines, nil)
		machine = len(st.machines) - 1
	}
	c := &calibration{machine: machine, start: calStart}
	st.machines[machine] = append(st.machines[machine], c)
	sort.Slice(st.machines[machine], func(a, b int) bool {
		return st.machines[machine][a].start < st.machines[machine][b].start
	})
	st.sched.Calibrate(machine, calStart)
	jobStart := calStart
	if j.Release > jobStart {
		jobStart = j.Release
	}
	if jobStart+j.Processing > j.Deadline || jobStart+j.Processing > calStart+st.inst.T {
		return fmt.Errorf("online: job %d unschedulable at its decision deadline (t=%d)", id, now)
	}
	insertRun(c, run{job: id, start: jobStart, end: jobStart + j.Processing})
	st.sched.Place(id, machine, jobStart)
	return nil
}

// fit returns the latest feasible start (>= now) for job j in
// calibration c's free space.
func fit(T ise.Time, c *calibration, j ise.Job, now ise.Time) (ise.Time, bool) {
	lo := c.start
	if j.Release > lo {
		lo = j.Release
	}
	if now > lo {
		lo = now
	}
	hi := c.start + T
	if j.Deadline < hi {
		hi = j.Deadline
	}
	if hi-lo < j.Processing {
		return 0, false
	}
	prevStart := hi
	for k := len(c.runs) - 1; k >= -1; k-- {
		gapEnd := prevStart
		var gapStart ise.Time
		if k >= 0 {
			gapStart = c.runs[k].end
			prevStart = c.runs[k].start
		} else {
			gapStart = lo
		}
		if gapStart < lo {
			gapStart = lo
		}
		if gapEnd > hi {
			gapEnd = hi
		}
		if gapEnd-gapStart >= j.Processing {
			return gapEnd - j.Processing, true
		}
		if k >= 0 && c.runs[k].start <= lo {
			break
		}
	}
	return 0, false
}

func insertRun(c *calibration, r run) {
	c.runs = append(c.runs, r)
	sort.Slice(c.runs, func(a, b int) bool { return c.runs[a].start < c.runs[b].start })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// trigger is a pending decision deadline.
type trigger struct {
	job int
	at  ise.Time
}

type triggerHeap []trigger

func (h triggerHeap) Len() int { return len(h) }
func (h triggerHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].job < h[b].job
}
func (h triggerHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *triggerHeap) Push(x any)   { *h = append(*h, x.(trigger)) }
func (h *triggerHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
