package online_test

import (
	"fmt"

	"calib/internal/ise"
	"calib/internal/online"
)

// Example runs the online policy: without knowing job 1 exists, the
// scheduler defers job 0 to its last safe moment and the late
// calibration it opens happens to serve neither job early.
func Example() {
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 20, 5)  // decided at t = 15
	inst.AddJob(10, 24, 4) // decided at t = 20, fits the open calibration
	s, err := online.Lazy(inst)
	if err != nil {
		panic(err)
	}
	fmt.Println("calibrations:", s.NumCalibrations())
	// Output:
	// calibrations: 1
}
