package online

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestQuickOnlineAlwaysFeasible: the online policy never misses a
// deadline on any valid instance and never places a calibration
// before the decision that created it could have been made (its start
// is at least the earliest release of the jobs it hosts, minus
// nothing: calibrations open at decision moments, which are at or
// after reveals).
func TestQuickOnlineAlwaysFeasible(t *testing.T) {
	prop := func(seed int64, mRaw, TRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var inst *ise.Instance
		if seed%2 == 0 {
			inst, _ = workload.Mixed(rng, 10, 1+int(mRaw%3), ise.Time(3+TRaw%10), 0.5)
		} else {
			inst = workload.Poisson(rng, 10, 1+int(mRaw%3), ise.Time(3+TRaw%10), 5)
		}
		s, err := Lazy(inst)
		if err != nil {
			return false
		}
		if ise.Validate(inst, s) != nil {
			return false
		}
		// Online causality: a job never starts before its own release
		// (validator checks this) and never before the calibration
		// hosting it was opened (containment, also checked). The
		// additional online property: calibration starts are at
		// decision deadlines, so every calibration start must be >=
		// the minimum release of jobs placed in it... opening happens
		// at a trigger fired at or after some reveal, so the start is
		// >= the earliest release overall.
		if len(inst.Jobs) == 0 {
			return true
		}
		lo, _ := inst.Span()
		for _, c := range s.Calibrations {
			if c.Start < lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
