package online

import (
	"math/rand"
	"testing"

	"calib/internal/bounds"
	"calib/internal/heur"
	"calib/internal/ise"
	"calib/internal/workload"
)

func TestLazySingleJob(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 5)
	s, err := Lazy(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, s); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if s.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1", s.NumCalibrations())
	}
	// The decision happens at d - p = 15: maximally deferred.
	if s.Calibrations[0].Start != 15 {
		t.Errorf("calibration at %d, want 15 (last safe moment)", s.Calibrations[0].Start)
	}
}

func TestLazySharesLateCalibrations(t *testing.T) {
	// Job 0 triggers at 15 and opens [15, 25); job 1 (d=30, p=4)
	// triggers at 26 but its window overlaps the open calibration's
	// tail [20, 25)... its trigger is 26 > 25 so it cannot fit.
	// Use a job whose decision deadline falls inside the open
	// calibration instead: d=24, p=4 -> trigger 20, fits [20, 24).
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 5)  // triggers at 15, opens [15, 25)
	in.AddJob(10, 24, 4) // triggers at 20, fits in the tail
	s, err := Lazy(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(in, s); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if s.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1 (share the tail)", s.NumCalibrations())
	}
}

// TestLazyAlwaysFeasible is the core online guarantee: the policy
// never misses a deadline, for any instance (it may use many machines
// and calibrations, but never fails).
func TestLazyAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		var inst *ise.Instance
		switch trial % 3 {
		case 0:
			inst, _ = workload.Mixed(rng, 15, 2, 10, 0.5)
		case 1:
			inst = workload.Poisson(rng, 15, 2, 10, 6)
		default:
			inst = workload.CrossingAdversarial(rng, 10, 2, 10)
		}
		s, err := Lazy(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(inst, s); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		if lb := bounds.Calibrations(inst); s.NumCalibrations() < lb {
			t.Fatalf("trial %d: beat the lower bound?! %d < %d", trial, s.NumCalibrations(), lb)
		}
	}
}

// TestOnlinePremium quantifies the cost of not knowing the future:
// online uses at least as many calibrations as the offline heuristic
// on average, and the premium stays moderate.
func TestOnlinePremium(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	onTotal, offTotal := 0, 0
	for trial := 0; trial < 15; trial++ {
		inst, _ := workload.Mixed(rng, 14, 1, 10, 0.5)
		on, err := Lazy(inst)
		if err != nil {
			t.Fatal(err)
		}
		off, err := heur.Lazy(inst, heur.Options{})
		if err != nil {
			t.Fatal(err)
		}
		onTotal += on.NumCalibrations()
		offTotal += off.NumCalibrations()
	}
	t.Logf("online %d vs offline %d calibrations (premium %.0f%%)",
		onTotal, offTotal, 100*float64(onTotal-offTotal)/float64(offTotal))
	if onTotal > 4*offTotal {
		t.Errorf("online premium implausibly high: %d vs %d", onTotal, offTotal)
	}
}

func TestLazyEmptyAndInvalid(t *testing.T) {
	empty := ise.NewInstance(10, 1)
	s, err := Lazy(empty)
	if err != nil || s.NumCalibrations() != 0 {
		t.Errorf("empty: %v %+v", err, s)
	}
	bad := ise.NewInstance(1, 1)
	bad.AddJob(0, 5, 1)
	if _, err := Lazy(bad); err == nil {
		t.Error("invalid instance accepted")
	}
}
