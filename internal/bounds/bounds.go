// Package bounds computes combinatorial lower bounds on the number of
// calibrations (and machines) an ISE instance requires. The experiment
// harness uses these when the exact solver is out of reach, so
// approximation ratios can still be reported as alg/LB (an upper bound
// on the true ratio's denominator quality).
package bounds

import (
	"sort"

	"calib/internal/ise"
	"calib/internal/mm"
)

// WorkBound returns ceil(total work / T): every calibration provides
// at most T units of processing.
func WorkBound(inst *ise.Instance) int {
	if inst.N() == 0 {
		return 0
	}
	return int((inst.TotalWork() + inst.T - 1) / inst.T)
}

// ClusterBound partitions jobs into clusters whose window hulls are
// separated by at least T (no calibration can serve two different
// clusters: a calibration hosting a job of the earlier cluster starts
// before that cluster's last deadline, so it ends more than T before
// the later cluster's first release... it ends at most T-1 after the
// earlier hull, strictly before the later hull begins), and sums each
// cluster's work bound.
func ClusterBound(inst *ise.Instance) int {
	if inst.N() == 0 {
		return 0
	}
	jobs := append([]ise.Job(nil), inst.Jobs...)
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Release < jobs[b].Release })
	total := 0
	var work ise.Time
	hullEnd := jobs[0].Deadline
	flush := func() {
		total += int((work + inst.T - 1) / inst.T)
		work = 0
	}
	for i, j := range jobs {
		if i > 0 && j.Release >= hullEnd+inst.T {
			flush()
			hullEnd = j.Deadline
		}
		work += j.Processing
		if j.Deadline > hullEnd {
			hullEnd = j.Deadline
		}
	}
	flush()
	return total
}

// IntervalMMBound implements the Lemma 18 lower bound: partition time
// into length-2*gamma*T intervals (gamma = 2) at a fixed offset; jobs
// nested in intervals that are pairwise more than T apart cannot share
// calibrations, and each such interval i needs at least w_i* >=
// mm.LowerBound calibrations. Taking every other interval (even or
// odd) gives two valid bounds; the result is the best over offsets
// {0, gamma*T} and parities.
func IntervalMMBound(inst *ise.Instance) int {
	if inst.N() == 0 {
		return 0
	}
	const gamma = 2
	span := 2 * gamma * inst.T
	best := 0
	for _, offset := range []ise.Time{0, gamma * inst.T} {
		// Collect per-interval nested jobs.
		groups := map[ise.Time][]ise.Job{}
		for _, j := range inst.Jobs {
			if j.Release < offset {
				continue
			}
			k := (j.Release - offset) / span
			t := offset + k*span
			if j.Deadline <= t+span {
				groups[k] = append(groups[k], j)
			}
		}
		var even, odd int
		for k, jobs := range groups {
			sub := ise.NewInstance(inst.T, inst.M)
			for _, j := range jobs {
				sub.AddJob(j.Release, j.Deadline, j.Processing)
			}
			w := mm.LowerBound(sub)
			if k%2 == 0 {
				even += w
			} else {
				odd += w
			}
		}
		if even > best {
			best = even
		}
		if odd > best {
			best = odd
		}
	}
	return best
}

// Calibrations returns the best lower bound on the optimal calibration
// count available without exact search.
func Calibrations(inst *ise.Instance) int {
	lb := WorkBound(inst)
	if b := ClusterBound(inst); b > lb {
		lb = b
	}
	if b := IntervalMMBound(inst); b > lb {
		lb = b
	}
	return lb
}

// Machines returns a lower bound on the number of machines any
// feasible schedule needs (the MM density bound; calibrations cannot
// reduce it).
func Machines(inst *ise.Instance) int {
	return mm.LowerBound(inst)
}
