package bounds_test

import (
	"fmt"

	"calib/internal/bounds"
	"calib/internal/ise"
)

// Example computes the cluster lower bound on a two-burst campaign.
func Example() {
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 20, 4)
	inst.AddJob(500, 520, 4) // too far away to share a calibration
	fmt.Println("work bound:", bounds.WorkBound(inst))
	fmt.Println("cluster bound:", bounds.ClusterBound(inst))
	fmt.Println("best:", bounds.Calibrations(inst))
	// Output:
	// work bound: 1
	// cluster bound: 2
	// best: 2
}
