package bounds

import (
	"math/rand"
	"testing"

	"calib/internal/exact"
	"calib/internal/ise"
	"calib/internal/workload"
)

func TestWorkBound(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 30, 7)
	in.AddJob(0, 30, 7)
	if got := WorkBound(in); got != 2 { // ceil(14/10)
		t.Errorf("WorkBound = %d, want 2", got)
	}
	if got := WorkBound(ise.NewInstance(10, 1)); got != 0 {
		t.Errorf("WorkBound(empty) = %d, want 0", got)
	}
}

func TestClusterBound(t *testing.T) {
	in := ise.NewInstance(10, 1)
	// Two clusters far apart, each needing one calibration: work bound
	// alone says ceil(4/10) + ... = 1, cluster bound says 2.
	in.AddJob(0, 20, 2)
	in.AddJob(100, 120, 2)
	if got := ClusterBound(in); got != 2 {
		t.Errorf("ClusterBound = %d, want 2", got)
	}
	if got := WorkBound(in); got != 1 {
		t.Errorf("WorkBound = %d, want 1", got)
	}
	// Overlapping windows: one cluster.
	in2 := ise.NewInstance(10, 1)
	in2.AddJob(0, 20, 2)
	in2.AddJob(5, 25, 2)
	if got := ClusterBound(in2); got != 1 {
		t.Errorf("ClusterBound = %d, want 1", got)
	}
}

func TestIntervalMMBound(t *testing.T) {
	const T = 10
	in := ise.NewInstance(T, 3)
	// Two parallel tight jobs nested in [0, 40): need 2 machines.
	in.AddJob(0, 10, 10)
	in.AddJob(0, 10, 10)
	if got := IntervalMMBound(in); got < 2 {
		t.Errorf("IntervalMMBound = %d, want >= 2", got)
	}
}

// TestBoundsNeverExceedOPT is the soundness property: every lower
// bound must be <= the exact optimum on random feasible instances.
func TestBoundsNeverExceedOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + rng.Intn(2),
			T:                      8,
			CalibrationsPerMachine: 1 + rng.Intn(2),
			Window:                 workload.AnyWindow,
		})
		if inst.N() == 0 || inst.N() > 7 {
			continue
		}
		opt, err := exact.Solve(inst, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lb := Calibrations(inst); lb > opt.Calibrations {
			t.Errorf("trial %d: lower bound %d > OPT %d (unsound!)", trial, lb, opt.Calibrations)
		}
		if lb := Machines(inst); lb > opt.Schedule.MachinesUsed() && lb > inst.M {
			t.Errorf("trial %d: machine bound %d > machines used and > M", trial, lb)
		}
	}
}

func TestCalibrationsTakesBest(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 20, 2)
	in.AddJob(100, 120, 2)
	if got, want := Calibrations(in), 2; got != want {
		t.Errorf("Calibrations = %d, want %d", got, want)
	}
}
