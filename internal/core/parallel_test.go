package core

import (
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/replay"
	"calib/internal/tise"
	"calib/internal/workload"
)

// TestParallelDecomposedFeasible: the decomposed concurrent path must
// produce validator- and simulator-feasible schedules on clustered
// workloads, at several parallelism levels.
func TestParallelDecomposedFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		inst, witness := workload.Clustered(rng, 3, 6, 2, 10)
		for _, par := range []int{1, 2, 8} {
			res, err := Solve(inst, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if err := ise.Validate(inst, res.Schedule); err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if rep := replay.Replay(inst, res.Schedule); !rep.Feasible {
				t.Fatalf("trial %d par %d: simulator rejected: %s", trial, par, rep.Violation)
			}
			if res.Components < 2 {
				t.Fatalf("trial %d par %d: components = %d, expected a split", trial, par, res.Components)
			}
			if witness != nil && res.LPObjective > float64(witness.NumCalibrations())+1e-6 {
				t.Fatalf("trial %d: summed LP objective %v exceeds witness %d",
					trial, res.LPObjective, witness.NumCalibrations())
			}
		}
	}
}

// TestParallelDeterministic: the merged schedule must not depend on
// worker count or scheduling interleavings.
func TestParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst, _ := workload.Clustered(rng, 4, 5, 2, 10)
	var want *ise.Schedule
	for _, par := range []int{1, 2, 3, 16} {
		for rep := 0; rep < 3; rep++ {
			res, err := Solve(inst, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Schedule.Clone()
			got.SortCanonical()
			if want == nil {
				want = got
				continue
			}
			if len(got.Calibrations) != len(want.Calibrations) || len(got.Placements) != len(want.Placements) {
				t.Fatalf("par %d: schedule shape changed", par)
			}
			for i := range got.Calibrations {
				if got.Calibrations[i] != want.Calibrations[i] {
					t.Fatalf("par %d: calibration %d differs: %v vs %v",
						par, i, got.Calibrations[i], want.Calibrations[i])
				}
			}
			for i := range got.Placements {
				if got.Placements[i] != want.Placements[i] {
					t.Fatalf("par %d: placement %d differs: %v vs %v",
						par, i, got.Placements[i], want.Placements[i])
				}
			}
		}
	}
}

// TestParallelMatchesMonolithicObjective: on clustered instances the
// summed component LP objective must equal the monolithic LP objective
// (no calibration spans a gap, so the LP decomposes exactly).
func TestParallelMatchesMonolithicObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		inst, _ := workload.Clustered(rng, 3, 4, 1, 10)
		mono, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d mono: %v", trial, err)
		}
		par, err := Solve(inst, Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("trial %d par: %v", trial, err)
		}
		if mono.Components != 1 || par.Components < 2 {
			t.Fatalf("trial %d: components mono=%d par=%d", trial, mono.Components, par.Components)
		}
		if d := mono.LPObjective - par.LPObjective; d > 1e-6 || d < -1e-6 {
			t.Fatalf("trial %d: LP objective mono %v != decomposed sum %v",
				trial, mono.LPObjective, par.LPObjective)
		}
		if len(par.Parts) != par.Components {
			t.Fatalf("trial %d: Parts has %d entries, want %d", trial, len(par.Parts), par.Components)
		}
	}
}

// TestParallelBoundedStrategy runs the full fast path: decomposition +
// bounded LP strategy on the revised engine, cross-checked against the
// default pipeline's calibration count and LP objective.
func TestParallelBoundedStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	inst, _ := workload.Clustered(rng, 3, 5, 2, 10)
	slow, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Solve(inst, Options{Parallelism: 4, Engine: tise.Revised, Strategy: tise.Bounded})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(inst, fast.Schedule); err != nil {
		t.Fatal(err)
	}
	if d := slow.LPObjective - fast.LPObjective; d > 1e-6 || d < -1e-6 {
		t.Fatalf("LP objective slow %v != fast %v", slow.LPObjective, fast.LPObjective)
	}
}

// TestParallelNoGapFallsBack: an instance with no decomposition gap
// must take the monolithic path even with Parallelism set.
func TestParallelNoGapFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	inst, _ := workload.Mixed(rng, 8, 2, 10, 0.5)
	res, err := Solve(inst, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 || res.Parts != nil {
		t.Fatalf("expected monolithic fallback, got %d components", res.Components)
	}
}
