// Package core assembles the complete ISE approximation algorithm of
// Fineman & Sheridan (SPAA 2015), Theorem 1: partition the jobs into
// long-window and short-window subsets (Definition 1), schedule the
// long jobs with the LP-based TISE algorithm (Section 3) and the short
// jobs with the MM-black-box algorithm (Section 4) on disjoint
// machines, and take the union.
//
// With an s-speed alpha-approximate MM box, the combined algorithm is
// an O(alpha)-machine s-speed O(alpha)-approximation for the number of
// calibrations.
package core

import (
	"fmt"
	"time"

	"calib/internal/ise"
	"calib/internal/mm"
	"calib/internal/shortwin"
	"calib/internal/tise"
)

// Options configures the combined solver.
type Options struct {
	// MM is the machine-minimization black box for short-window jobs;
	// defaults to mm.Greedy{}.
	MM mm.Solver
	// Engine selects the LP backend for long-window jobs.
	Engine tise.Engine
	// TrimIdle enables the short-window idle-calibration trimming
	// optimization (off = paper-faithful).
	TrimIdle bool
	// Gamma overrides the long/short window threshold (jobs with
	// window >= Gamma*T go to the long-window algorithm). 0 means the
	// paper's Gamma = 2; larger values are valid per the paper's
	// Section 3 remark and traded off in experiment T11.
	Gamma int
}

// Result is the output of Solve.
type Result struct {
	// Schedule is the merged feasible ISE schedule for the full
	// instance.
	Schedule *ise.Schedule
	// Long is the long-window sub-result (nil when there are no long
	// jobs); its placements refer to the long sub-instance's job IDs.
	Long *tise.Result
	// Short is the short-window sub-result (nil when there are no
	// short jobs).
	Short *shortwin.Result
	// LongJobs and ShortJobs count the partition sizes.
	LongJobs, ShortJobs int
	// LongTime and ShortTime are the wall clocks of the two
	// sub-pipelines.
	LongTime, ShortTime time.Duration
}

// Solve runs the combined algorithm. The two sub-algorithms run on
// disjoint machine blocks: long-window machines first, then
// short-window machines.
func Solve(inst *ise.Instance, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	gamma := opts.Gamma
	if gamma == 0 {
		gamma = shortwin.Gamma
	}
	if gamma < 2 {
		return nil, fmt.Errorf("core: gamma = %d, want >= 2", gamma)
	}
	long, short, longIDs, shortIDs := inst.PartitionAt(ise.Time(gamma) * inst.T)
	res := &Result{LongJobs: long.N(), ShortJobs: short.N()}
	merged := ise.NewSchedule(0)
	offset := 0
	if long.N() > 0 {
		t0 := time.Now()
		lr, err := tise.Solve(long, tise.Options{Engine: opts.Engine})
		if err != nil {
			return nil, err
		}
		res.LongTime = time.Since(t0)
		res.Long = lr
		ls := lr.Schedule.Clone()
		ls.RenumberJobs(longIDs)
		merged.Merge(ls, 0)
		offset = ls.Machines
	}
	if short.N() > 0 {
		t0 := time.Now()
		sr, err := shortwin.Solve(short, shortwin.Options{MM: opts.MM, TrimIdle: opts.TrimIdle, Gamma: gamma})
		if err != nil {
			return nil, err
		}
		res.ShortTime = time.Since(t0)
		res.Short = sr
		ss := sr.Schedule.Clone()
		ss.RenumberJobs(shortIDs)
		merged.Merge(ss, offset)
	}
	if merged.Machines == 0 {
		merged.Machines = 1
	}
	res.Schedule = merged
	return res, nil
}
