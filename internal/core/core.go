// Package core assembles the complete ISE approximation algorithm of
// Fineman & Sheridan (SPAA 2015), Theorem 1: partition the jobs into
// long-window and short-window subsets (Definition 1), schedule the
// long jobs with the LP-based TISE algorithm (Section 3) and the short
// jobs with the MM-black-box algorithm (Section 4) on disjoint
// machines, and take the union.
//
// With an s-speed alpha-approximate MM box, the combined algorithm is
// an O(alpha)-machine s-speed O(alpha)-approximation for the number of
// calibrations.
package core

import (
	"fmt"
	"sync"
	"time"

	"calib/internal/decomp"
	"calib/internal/fault"
	"calib/internal/ise"
	"calib/internal/mm"
	"calib/internal/obs"
	"calib/internal/robust"
	"calib/internal/shortwin"
	"calib/internal/tise"
)

// Options configures the combined solver.
type Options struct {
	// MM is the machine-minimization black box for short-window jobs;
	// defaults to mm.Greedy{}.
	MM mm.Solver
	// Engine selects the LP backend for long-window jobs: Float64
	// (dense tableau, default), Rational (exact), Revised (sparse
	// revised simplex on the LU basis — the hot path), or RevisedDense
	// (Revised on the dense reference basis, for cross-checking).
	Engine tise.Engine
	// TrimIdle enables the short-window idle-calibration trimming
	// optimization (off = paper-faithful).
	TrimIdle bool
	// Gamma overrides the long/short window threshold (jobs with
	// window >= Gamma*T go to the long-window algorithm). 0 means the
	// paper's Gamma = 2; larger values are valid per the paper's
	// Section 3 remark and traded off in experiment T11.
	Gamma int
	// Strategy selects the long-window LP row strategy (default
	// Direct; tise.Bounded is the fast path).
	Strategy tise.Strategy
	// Parallelism enables time-component decomposition: when > 0 the
	// instance is split at release/deadline gaps of at least T (no
	// calibration can span such a gap, so the optimum decomposes
	// exactly — see internal/decomp) and the components are solved
	// concurrently by up to Parallelism workers, then merged on
	// disjoint machine blocks in component order (deterministic
	// output). 0 (the default) keeps the monolithic single-threaded
	// solve.
	Parallelism int
	// Trace, when non-nil, records the solve's phase spans (partition,
	// long-window lp/rounding/edf, short-window mm, per-component
	// spans on the decomposed path) under Trace.Root().
	Trace *obs.Trace
	// Metrics receives the solver counter/gauge/histogram series (see
	// internal/obs/names.go for the catalogue). When Trace or Metrics
	// is nil, the process-wide default (obs.SetDefault /
	// obs.SetDefaultTrace) is used; with neither installed, telemetry
	// is disabled at zero cost.
	Metrics *obs.Registry
	// Control carries the solve's cancellation context and work budget
	// into every long-running loop of the pipeline (LP pivots, cut
	// rounds, MM probes, the decomposition pool). nil means no limits.
	Control *robust.Control
	// Fault, when non-nil, arms deterministic fault injection at the
	// solver-phase points (solve_panic, solve_latency, budget_burn) —
	// the chaos suite's way of proving the containment layers work. nil
	// (the default) disables injection at the same zero cost as a nil
	// Control.
	Fault *fault.Injector
}

// Result is the output of Solve.
type Result struct {
	// Schedule is the merged feasible ISE schedule for the full
	// instance.
	Schedule *ise.Schedule
	// Long is the long-window sub-result (nil when there are no long
	// jobs); its placements refer to the long sub-instance's job IDs.
	Long *tise.Result
	// Short is the short-window sub-result (nil when there are no
	// short jobs).
	Short *shortwin.Result
	// LongJobs and ShortJobs count the partition sizes.
	LongJobs, ShortJobs int
	// LongTime and ShortTime are the wall clocks of the two
	// sub-pipelines (summed across components on the decomposed path).
	LongTime, ShortTime time.Duration
	// Components is how many independent time components were solved
	// (1 on the monolithic path or when no gap splits the instance).
	Components int
	// LPObjective is the long-window LP optimum summed across
	// components; it equals Long.LP.Objective on the monolithic path
	// and 0 when there are no long jobs. Because no calibration spans
	// a decomposition gap, the sum lower-bounds the optimal TISE
	// calibration count exactly as the monolithic objective does.
	LPObjective float64
	// Parts holds the per-component results on the decomposed path
	// (nil otherwise); Parts[i].Schedule uses component-local job IDs.
	Parts []*Result
}

// Solve runs the combined algorithm. The two sub-algorithms run on
// disjoint machine blocks: long-window machines first, then
// short-window machines. With Options.Parallelism > 0 the instance is
// first decomposed into independent time components (see
// internal/decomp) solved concurrently.
func Solve(inst *ise.Instance, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	gamma := opts.Gamma
	if gamma == 0 {
		gamma = shortwin.Gamma
	}
	if gamma < 2 {
		return nil, fmt.Errorf("core: gamma = %d, want >= 2", gamma)
	}
	tr, met := opts.Trace, opts.Metrics
	if tr == nil {
		tr = obs.DefaultTrace()
	}
	if met == nil {
		met = obs.Default()
	}
	obs.Declare(met)
	sp := tr.Root().Start("solve")
	sp.SetInt("jobs", int64(inst.N()))
	sp.SetInt("machines", int64(inst.M))
	sp.SetInt("gamma", int64(gamma))
	t0 := time.Now()
	var res *Result
	var err error
	if opts.Parallelism > 0 {
		dsp := sp.Start("decompose")
		comps := decomp.Split(inst)
		dsp.SetInt("components", int64(len(comps)))
		dsp.End()
		if len(comps) > 1 {
			met.Gauge(obs.MDecompComponents).Set(float64(len(comps)))
			res, err = solveDecomposed(comps, opts, gamma, sp, met)
		} else {
			met.Gauge(obs.MDecompComponents).Set(1)
			res, err = solveMono(inst, opts, gamma, sp, met)
		}
	} else {
		met.Gauge(obs.MDecompComponents).Set(1)
		res, err = solveMono(inst, opts, gamma, sp, met)
	}
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetInt("calibrations", int64(res.Schedule.NumCalibrations()))
	sp.SetFloat("lp_objective", res.LPObjective)
	sp.End()
	met.Histogram(obs.MSolveSeconds, nil).Observe(time.Since(t0).Seconds())
	return res, nil
}

// solveMono is the single-component pipeline: partition long/short,
// run the two sub-algorithms, merge on disjoint machine blocks. parent
// receives the partition/long/short phase spans; met the per-component
// solve-time histogram (both may be nil).
func solveMono(inst *ise.Instance, opts Options, gamma int, parent *obs.Span, met *obs.Registry) (*Result, error) {
	if err := injectFaults(opts); err != nil {
		return nil, err
	}
	t0 := time.Now()
	psp := parent.Start("partition")
	long, short, longIDs, shortIDs := inst.PartitionAt(ise.Time(gamma) * inst.T)
	psp.SetInt("long", int64(long.N()))
	psp.SetInt("short", int64(short.N()))
	psp.End()
	res := &Result{LongJobs: long.N(), ShortJobs: short.N(), Components: 1}
	merged := ise.NewSchedule(0)
	offset := 0
	if long.N() > 0 {
		t1 := time.Now()
		lsp := parent.Start("long")
		lr, err := tise.Solve(long, tise.Options{
			Engine: opts.Engine, Strategy: opts.Strategy,
			Span: lsp, Metrics: met, Control: opts.Control,
		})
		if err != nil {
			lsp.End()
			return nil, err
		}
		lsp.SetFloat("lp_objective", lr.LP.Objective)
		lsp.End()
		res.LongTime = time.Since(t1)
		res.Long = lr
		res.LPObjective = lr.LP.Objective
		ls := lr.Schedule.Clone()
		ls.RenumberJobs(longIDs)
		merged.Merge(ls, 0)
		offset = ls.Machines
	}
	if short.N() > 0 {
		t1 := time.Now()
		ssp := parent.Start("short")
		sr, err := shortwin.Solve(short, shortwin.Options{
			MM: opts.MM, TrimIdle: opts.TrimIdle, Gamma: gamma,
			Span: ssp, Metrics: met, Control: opts.Control,
		})
		if err != nil {
			ssp.End()
			return nil, err
		}
		ssp.SetInt("intervals", int64(len(sr.Intervals)))
		ssp.End()
		res.ShortTime = time.Since(t1)
		res.Short = sr
		ss := sr.Schedule.Clone()
		ss.RenumberJobs(shortIDs)
		merged.Merge(ss, offset)
	}
	if merged.Machines == 0 {
		merged.Machines = 1
	}
	res.Schedule = merged
	met.Histogram(obs.MDecompCompSecs, nil).Observe(time.Since(t0).Seconds())
	return res, nil
}

// injectFaults runs the armed solver-phase injection points at the
// start of a component solve: artificial latency first (the solve
// slows down), then a budget burn charged against the solve's Control
// (a burned budget trips ErrBudgetExhausted exactly like real work
// would), then a panic (absorbed by the same containment —
// RecoverTo, the ladder — that guards real solver panics). With a nil
// injector all three are nil-check no-ops.
func injectFaults(opts Options) error {
	f := opts.Fault
	if f.Hit(fault.SolveLatency) {
		time.Sleep(f.Duration(fault.SolveLatency))
	}
	if f.Hit(fault.BudgetBurn) {
		if err := opts.Control.Charge(f.Amount(fault.BudgetBurn)); err != nil {
			return err
		}
	}
	if f.Hit(fault.SolvePanic) {
		panic("fault: injected solver panic (solve_panic)")
	}
	return nil
}

// testHookComponent, when non-nil, runs at the start of every
// decomposition-pool component solve. It exists so the pool's panic
// containment can be exercised deterministically from tests (an
// injected panic must fail only its component, never leak a worker);
// it is nil outside tests and costs one predictable branch.
var testHookComponent func(component int)

// solveComponent runs one component through solveMono with panic
// containment and component provenance: a panicking solver phase is
// converted to a robust.ErrPanic taxonomy error (counted in
// robust_panics_total) instead of killing the worker — which would
// leave the pool's WaitGroup waiting forever.
func solveComponent(i, w int, comp decomp.Component, opts Options, gamma int, parent *obs.Span, met *obs.Registry) (res *Result, err error) {
	csp := parent.Start("component")
	csp.SetInt("index", int64(i))
	csp.SetInt("worker", int64(w))
	defer csp.End()
	defer robust.RecoverTo(&err, "pool", i, met)
	if testHookComponent != nil {
		testHookComponent(i)
	}
	res, err = solveMono(comp.Inst, opts, gamma, csp, met)
	if err != nil {
		err = robust.Componentize(err, i)
	}
	return res, err
}

// solveDecomposed solves each time component with solveMono on a
// bounded worker pool and merges the component schedules on disjoint
// machine blocks in component order, so the output is deterministic
// regardless of worker interleaving.
//
// The task channel is buffered to the full component count and filled
// before the workers start: the feeder can never block, so even if
// every worker died the pool would still unwind (the per-component
// panic containment in solveComponent makes that a non-event anyway).
func solveDecomposed(comps []decomp.Component, opts Options, gamma int, parent *obs.Span, met *obs.Registry) (*Result, error) {
	workers := opts.Parallelism
	if workers > len(comps) {
		workers = len(comps)
	}
	results := make([]*Result, len(comps))
	errs := make([]error, len(comps))
	tasks := make(chan int, len(comps))
	for i := range comps {
		tasks <- i
	}
	close(tasks)
	dispatched := met.Counter(obs.MDecompTasks)
	busy := met.Gauge(obs.MDecompPoolBusy)
	peak := met.Gauge(obs.MDecompPoolMax)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range tasks {
				dispatched.Inc()
				peak.SetMax(busy.Add(1))
				results[i], errs[i] = solveComponent(i, w, comps[i], opts, gamma, parent, met)
				busy.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	agg := &Result{Components: len(comps), Parts: results}
	merged := ise.NewSchedule(0)
	offset := 0
	for i, part := range results {
		ps := part.Schedule.Clone()
		ps.RenumberJobs(comps[i].IDs)
		merged.Merge(ps, offset)
		offset += ps.Machines
		agg.LongJobs += part.LongJobs
		agg.ShortJobs += part.ShortJobs
		agg.LongTime += part.LongTime
		agg.ShortTime += part.ShortTime
		agg.LPObjective += part.LPObjective
	}
	if merged.Machines == 0 {
		merged.Machines = 1
	}
	agg.Schedule = merged
	return agg, nil
}
