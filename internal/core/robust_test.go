package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"calib/internal/exact"
	"calib/internal/ise"
	"calib/internal/obs"
	"calib/internal/robust"
	"calib/internal/workload"
)

// fallbackCount sums robust_fallback_total across its rung labels.
func fallbackCount(met *obs.Registry) int64 {
	var n int64
	for _, c := range met.Snapshot().Counters {
		if c.Name == obs.MRobustFallback {
			n += c.Value
		}
	}
	return n
}

// TestPoolPanicContained: a panic inside one component's solve must
// surface as a robust.ErrPanic taxonomy error carrying the component
// index — and must not leak pool workers (the pre-fix pool deadlocked
// the feeder and stranded every goroutine when a worker died).
func TestPoolPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, _ := workload.Clustered(rng, 3, 5, 2, 10)
	before := runtime.NumGoroutine()
	testHookComponent = func(component int) {
		if component == 1 {
			panic("injected component failure")
		}
	}
	defer func() { testHookComponent = nil }()
	done := make(chan error, 1)
	go func() {
		_, err := Solve(inst, Options{Parallelism: 2})
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool deadlocked after component panic")
	}
	if err == nil {
		t.Fatal("expected an error from the panicking component")
	}
	if !errors.Is(err, robust.ErrPanic) {
		t.Fatalf("error %v is not robust.ErrPanic", err)
	}
	var re *robust.Error
	if !errors.As(err, &re) || re.Component != 1 {
		t.Fatalf("error %v does not carry component 1", err)
	}
	// The other components' workers must have drained and exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestSolveRobustExactSmall: with no deadline pressure every small
// component is answered by the exact rung, the merged schedule is
// feasible, and the bound certificates are exact and consistent.
func TestSolveRobustExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst, _ := workload.Clustered(rng, 3, 4, 1, 10)
	met := obs.NewRegistry()
	res, err := SolveRobust(inst, RobustOptions{Options: Options{Metrics: met}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if !res.Exact || res.Degraded {
		t.Fatalf("expected exact undegraded answer, got Exact=%v Degraded=%v", res.Exact, res.Degraded)
	}
	for _, rep := range res.Reports {
		if rep.Rung != "exact" {
			t.Fatalf("component %d answered by %q, want exact", rep.Component, rep.Rung)
		}
	}
	if float64(res.UpperBound) != res.LowerBound {
		t.Fatalf("exact answer but bounds differ: upper %d, lower %v", res.UpperBound, res.LowerBound)
	}
	if n := fallbackCount(met); n != 0 {
		t.Fatalf("robust_fallback_total = %d on an undegraded solve", n)
	}
	// Cross-check the certificate against the global exact optimum
	// (component optima sum exactly: no calibration spans a gap).
	ex, err := exact.Solve(inst, exact.Options{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Proven || ex.Calibrations != res.UpperBound {
		t.Fatalf("SolveRobust says %d calibrations, exact oracle says %d (proven=%v)",
			res.UpperBound, ex.Calibrations, ex.Proven)
	}
}

// TestSolveRobustDegradesOnExpiredDeadline: with the deadline already
// gone, every rung under control fails fast and the uncontrolled heur
// rung still delivers a feasible schedule; the fallbacks are visible in
// robust_fallback_total.
func TestSolveRobustDegradesOnExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst, _ := workload.Clustered(rng, 3, 5, 2, 10)
	met := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline definitely expired
	ctl := robust.NewControl(ctx, 0, met)
	res, err := SolveRobust(inst, RobustOptions{Options: Options{Metrics: met, Control: ctl}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("degraded schedule infeasible: %v", err)
	}
	if !res.Degraded || res.Exact {
		t.Fatalf("expected degraded answer, got Degraded=%v Exact=%v", res.Degraded, res.Exact)
	}
	for _, rep := range res.Reports {
		if rep.Rung != "heur" {
			t.Fatalf("component %d answered by %q under an expired deadline", rep.Component, rep.Rung)
		}
	}
	if n := fallbackCount(met); n == 0 {
		t.Fatal("robust_fallback_total = 0 despite degradation")
	}
}

// TestSolveRobustBudgetDegrades: an exhausted work budget (no
// deadline) must degrade the same way — the heur rung is free and
// still answers.
func TestSolveRobustBudgetDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst, _ := workload.Clustered(rng, 2, 6, 2, 10)
	met := obs.NewRegistry()
	ctl := robust.NewControl(context.Background(), 1, met) // one work unit total
	// Disable the exact rung: tiny searches can finish inside one check
	// cadence without ever touching the budget; the LP rung charges
	// every pivot and trips immediately.
	res, err := SolveRobust(inst, RobustOptions{Options: Options{Metrics: met, Control: ctl}, ExactJobs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("degraded schedule infeasible: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expected budget exhaustion to degrade")
	}
	var sawBudget bool
	for _, rep := range res.Reports {
		for _, a := range rep.Attempts {
			if errors.Is(a.Err, robust.ErrBudgetExhausted) {
				sawBudget = true
			}
		}
	}
	if !sawBudget {
		t.Fatal("no attempt failed with ErrBudgetExhausted")
	}
}

// TestSolveRobustHardCancelAborts: a canceled caller context must
// abort the whole solve with ErrCanceled — degradation serves
// deadlines, not callers that walked away.
func TestSolveRobustHardCancelAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inst, _ := workload.Clustered(rng, 2, 5, 2, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl := robust.NewControl(ctx, 0, obs.NewRegistry())
	_, err := SolveRobust(inst, RobustOptions{Options: Options{Control: ctl}})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("error %v is not robust.ErrCanceled", err)
	}
}

// TestSolveRobustParallelDeterministic: the robust merge must be
// deterministic across worker counts when nothing degrades.
func TestSolveRobustParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst, _ := workload.Clustered(rng, 4, 4, 1, 10)
	var want *ise.Schedule
	for _, par := range []int{1, 2, 8} {
		res, err := SolveRobust(inst, RobustOptions{Options: Options{Parallelism: par, Metrics: obs.NewRegistry()}})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Schedule.Clone()
		got.SortCanonical()
		if want == nil {
			want = got
			continue
		}
		if len(got.Calibrations) != len(want.Calibrations) || len(got.Placements) != len(want.Placements) {
			t.Fatalf("par %d: schedule shape changed", par)
		}
		for i := range got.Calibrations {
			if got.Calibrations[i] != want.Calibrations[i] {
				t.Fatalf("par %d: calibration %d differs", par, i)
			}
		}
		for i := range got.Placements {
			if got.Placements[i] != want.Placements[i] {
				t.Fatalf("par %d: placement %d differs", par, i)
			}
		}
	}
}
