package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"calib/internal/decomp"
	"calib/internal/exact"
	"calib/internal/heur"
	"calib/internal/ise"
	"calib/internal/obs"
	"calib/internal/robust"
	"calib/internal/shortwin"
)

// RobustOptions configures SolveRobust. The embedded Options carry the
// pipeline configuration (engine, strategy, MM box, parallelism,
// telemetry) and — crucially — the Control whose deadline/budget drive
// the degradation ladder.
type RobustOptions struct {
	Options
	// ExactJobs gates the exact rung: a component is attempted exactly
	// only when it has at most this many jobs (branch-and-bound is
	// exponential). 0 means 12; negative disables the exact rung.
	ExactJobs int
	// ExactNodes caps the exact rung's search tree per component; 0
	// means 500_000. The cap makes the rung fail fast (and fall to the
	// LP rung) on adversarial components instead of eating the whole
	// deadline.
	ExactNodes int
}

// defaults for RobustOptions.
const (
	defaultExactJobs  = 12
	defaultExactNodes = 500_000
)

// rung deadline slices: exact may burn at most half the remaining
// deadline, the LP pipeline most of the rest; the heuristic rung runs
// uncontrolled (it is near-linear) so a fully expired deadline still
// produces an answer.
const (
	exactSlice = 0.5
	lpSlice    = 0.9
)

// ComponentReport describes how one time component was answered.
type ComponentReport struct {
	// Component is the component index (decomp.Split order).
	Component int
	// Jobs is the component's job count.
	Jobs int
	// Rung names the answering rung: "exact", "lp", or "heur".
	Rung string
	// Attempts lists the rungs that failed before Rung answered, with
	// their taxonomy reasons.
	Attempts []robust.Attempt
	// Calibrations is the component schedule's calibration count (an
	// upper bound on the component optimum).
	Calibrations int
	// LowerBound lower-bounds the component's optimal TISE calibration
	// count: the exact optimum on the exact rung, the long-window LP
	// objective on the lp rung, 0 (vacuous) on the heur rung.
	LowerBound float64
	// Exact reports that Calibrations is provably optimal for the
	// component (exact rung, search completed).
	Exact bool
	// schedule carries the component schedule (component-local job IDs)
	// from the pool worker to the merge; nil after SolveRobust returns.
	schedule *ise.Schedule
}

// RobustResult is the output of SolveRobust: a feasible schedule plus
// per-component provenance and bound certificates.
type RobustResult struct {
	// Schedule is the merged feasible ISE schedule (component blocks on
	// disjoint machines, component order).
	Schedule *ise.Schedule
	// Components is the number of independent time components solved.
	Components int
	// Reports holds one entry per component, in component order.
	Reports []ComponentReport
	// Degraded reports whether any component fell past its first
	// eligible rung.
	Degraded bool
	// UpperBound is Schedule.NumCalibrations(): the certificate that a
	// feasible schedule with this many calibrations exists.
	UpperBound int
	// LowerBound sums the per-component lower bounds. Components
	// answered by the heuristic rung contribute 0, so the bound is
	// valid (if weak) under any degradation.
	LowerBound float64
	// Exact reports that every component was answered by a completed
	// exact search, making UpperBound the true optimum.
	Exact bool
}

// RungSummary names the rungs that answered, comma-joined and
// deduplicated in ladder order ("exact,lp" when some components
// answered exactly and others degraded to the LP). The decision log
// stamps it into each request's record.
func (r *RobustResult) RungSummary() string {
	if r == nil || len(r.Reports) == 0 {
		return ""
	}
	var seen [3]bool // exact, lp, heur — ladder order
	other := ""
	for _, rep := range r.Reports {
		switch rep.Rung {
		case "exact":
			seen[0] = true
		case "lp":
			seen[1] = true
		case "heur":
			seen[2] = true
		default:
			other = rep.Rung
		}
	}
	parts := make([]string, 0, 4)
	for i, name := range [3]string{"exact", "lp", "heur"} {
		if seen[i] {
			parts = append(parts, name)
		}
	}
	if other != "" {
		parts = append(parts, other)
	}
	return strings.Join(parts, ",")
}

// Falls flattens every component's failed rung attempts into
// "rung:reason" tokens, in component order. Empty for an undegraded
// solve.
func (r *RobustResult) Falls() []string {
	if r == nil || !r.Degraded {
		return nil
	}
	var falls []string
	for _, rep := range r.Reports {
		for _, a := range rep.Attempts {
			falls = append(falls, a.String())
		}
	}
	return falls
}

// componentAnswer is what a ladder rung returns through RunLadder's
// untyped Value.
type componentAnswer struct {
	sched *ise.Schedule
	lower float64
	exact bool
}

// SolveRobust is Solve with graceful degradation. The instance is
// decomposed into time components (always — the decomposition is exact
// and gives the ladder its per-component granularity) and each
// component descends a rung ladder until one answers:
//
//	exact — branch and bound (only for components with at most
//	        ExactJobs jobs); answers only with a completed proof;
//	lp    — the paper's LP + rounding pipeline (Solve's solveMono);
//	heur  — the lazy-binning heuristic with an uncapped machine
//	        budget, run without a control so it answers even after
//	        the deadline has fully expired.
//
// A rung that hits the deadline slice, exhausts the budget, panics, or
// fails numerically falls to the next (recorded in
// robust_fallback_total); a hard caller cancellation aborts the whole
// solve. Each component keeps the strongest certificate its answering
// rung provides, and the merged result reports global upper and lower
// bounds on the calibration count.
//
// The price of degradation is machines, not feasibility: the heur rung
// may use more than inst.M machines (Schedule.Machines says how many),
// mirroring the paper's own machine-augmentation guarantees.
func SolveRobust(inst *ise.Instance, opts RobustOptions) (*RobustResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	gamma := opts.Gamma
	if gamma == 0 {
		gamma = Gamma()
	}
	if gamma < 2 {
		return nil, fmt.Errorf("core: gamma = %d, want >= 2", gamma)
	}
	if opts.ExactJobs == 0 {
		opts.ExactJobs = defaultExactJobs
	}
	if opts.ExactNodes == 0 {
		opts.ExactNodes = defaultExactNodes
	}
	tr, met := opts.Trace, opts.Metrics
	if tr == nil {
		tr = obs.DefaultTrace()
	}
	if met == nil {
		met = obs.Default()
	}
	obs.Declare(met)
	opts.Metrics = met
	sp := tr.Root().Start("solve_robust")
	defer sp.End()
	sp.SetInt("jobs", int64(inst.N()))
	sp.SetInt("machines", int64(inst.M))
	t0 := time.Now()
	comps := decomp.Split(inst)
	if len(comps) == 0 {
		return &RobustResult{
			Schedule: ise.NewSchedule(1), Components: 0, Exact: true,
		}, nil
	}
	sp.SetInt("components", int64(len(comps)))
	met.Gauge(obs.MDecompComponents).Set(float64(len(comps)))

	reports := make([]ComponentReport, len(comps))
	errs := make([]error, len(comps))
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	tasks := make(chan int, len(comps))
	for i := range comps {
		tasks <- i
	}
	close(tasks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				reports[i], errs[i] = solveComponentRobust(i, comps[i], opts, gamma, sp, met)
			}
		}()
	}
	wg.Wait()

	out := &RobustResult{Components: len(comps), Exact: true}
	merged := ise.NewSchedule(0)
	offset := 0
	var schedules = make([]*ise.Schedule, len(comps))
	for i := range comps {
		if errs[i] != nil {
			return nil, errs[i]
		}
		schedules[i] = reports[i].schedule
		reports[i].schedule = nil
	}
	for i, rep := range reports {
		ps := schedules[i].Clone()
		ps.RenumberJobs(comps[i].IDs)
		merged.Merge(ps, offset)
		offset += ps.Machines
		out.LowerBound += rep.LowerBound
		out.Exact = out.Exact && rep.Exact
		out.Degraded = out.Degraded || len(rep.Attempts) > 0
	}
	if merged.Machines == 0 {
		merged.Machines = 1
	}
	out.Schedule = merged
	out.Reports = reports
	out.UpperBound = merged.NumCalibrations()
	sp.SetInt("calibrations", int64(out.UpperBound))
	met.Histogram(obs.MSolveSeconds, nil).Observe(time.Since(t0).Seconds())
	return out, nil
}

// solveComponentRobust descends the rung ladder for one component and
// converts the winning rung's answer into a report. Panics anywhere in
// a rung are contained by RunLadder; panics outside the rungs (report
// assembly) are contained here so a pool worker can never die.
func solveComponentRobust(i int, comp decomp.Component, opts RobustOptions, gamma int, parent *obs.Span, met *obs.Registry) (rep ComponentReport, err error) {
	csp := parent.Start("component")
	csp.SetInt("index", int64(i))
	csp.SetInt("jobs", int64(comp.Inst.N()))
	defer csp.End()
	defer robust.RecoverTo(&err, "pool", i, met)
	if testHookComponent != nil {
		testHookComponent(i)
	}
	res, err := robust.RunLadder(opts.Control, met, i, componentRungs(comp.Inst, opts, gamma, csp, met))
	if err != nil {
		return ComponentReport{Component: i}, err
	}
	ans := res.Value.(componentAnswer)
	csp.SetStr("rung", res.Rung)
	return ComponentReport{
		Component:    i,
		Jobs:         comp.Inst.N(),
		Rung:         res.Rung,
		Attempts:     res.Attempts,
		Calibrations: ans.sched.NumCalibrations(),
		LowerBound:   ans.lower,
		Exact:        ans.exact,
		schedule:     ans.sched,
	}, nil
}

// componentRungs builds the exact→lp→heur ladder for one component
// sub-instance.
func componentRungs(inst *ise.Instance, opts RobustOptions, gamma int, parent *obs.Span, met *obs.Registry) []robust.Rung {
	var rungs []robust.Rung
	if opts.ExactJobs > 0 && inst.N() <= opts.ExactJobs {
		rungs = append(rungs, robust.Rung{
			Name:  "exact",
			Slice: exactSlice,
			Run: func(c *robust.Control) (any, error) {
				res, err := exact.Solve(inst, exact.Options{
					MaxNodes: opts.ExactNodes, WarmStart: true, Control: c,
				})
				if err != nil {
					return nil, err
				}
				if !res.Proven {
					// Node cap hit without proof: the incumbent is not a
					// certificate, so the rung declines and the LP rung
					// takes over.
					return nil, fmt.Errorf("exact: search capped at %d nodes without proof", res.Nodes)
				}
				return componentAnswer{
					sched: res.Schedule, lower: float64(res.Calibrations), exact: true,
				}, nil
			},
		})
	}
	rungs = append(rungs,
		robust.Rung{
			Name:  "lp",
			Slice: lpSlice,
			Run: func(c *robust.Control) (any, error) {
				mono := opts.Options
				mono.Control = c
				res, err := solveMono(inst, mono, gamma, parent, met)
				if err != nil {
					return nil, err
				}
				return componentAnswer{sched: res.Schedule, lower: res.LPObjective}, nil
			},
		},
		robust.Rung{
			Name: "heur",
			// No control: the heuristic is near-linear and must answer
			// even when the deadline has already expired.
			Run: func(*robust.Control) (any, error) {
				sched, err := heur.Lazy(inst, heur.Options{})
				if err != nil {
					return nil, err
				}
				if err := ise.Validate(inst, sched); err != nil {
					return nil, fmt.Errorf("heur schedule invalid: %w", err)
				}
				return componentAnswer{sched: sched}, nil
			},
		},
	)
	return rungs
}

// Gamma returns the default long/short window threshold (the paper's
// gamma = 2), re-exported so RobustOptions callers need not import
// shortwin.
func Gamma() int { return shortwin.Gamma }
