package core

import (
	"math/rand"
	"testing"

	"calib/internal/bounds"
	"calib/internal/exact"
	"calib/internal/ise"
	"calib/internal/mm"
	"calib/internal/tise"
	"calib/internal/workload"
)

func TestSolveMixedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		m := 1 + rng.Intn(2)
		inst, witness := workload.Planted(rng, workload.PlantedConfig{
			Machines:               m,
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(3),
			Window:                 workload.AnyWindow,
		})
		res, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ise.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: infeasible: %v", trial, err)
		}
		if res.LongJobs+res.ShortJobs != inst.N() {
			t.Errorf("trial %d: partition %d+%d != %d", trial, res.LongJobs, res.ShortJobs, inst.N())
		}
		// Sanity: lower bound never exceeds what we produced.
		if lb := bounds.Calibrations(inst); lb > res.Schedule.NumCalibrations() {
			t.Errorf("trial %d: LB %d > produced %d", trial, lb, res.Schedule.NumCalibrations())
		}
		_ = witness
	}
}

func TestSolveLongOnlyAndShortOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	long, _ := workload.Long(rng, 8, 1, 10)
	lr, err := Solve(long, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Short != nil || lr.Long == nil {
		t.Error("long-only instance should produce only a long sub-result")
	}
	if err := ise.Validate(long, lr.Schedule); err != nil {
		t.Fatalf("long-only infeasible: %v", err)
	}

	short, _ := workload.Short(rng, 8, 1, 10)
	sr, err := Solve(short, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Long != nil || sr.Short == nil {
		t.Error("short-only instance should produce only a short sub-result")
	}
	if err := ise.Validate(short, sr.Schedule); err != nil {
		t.Fatalf("short-only infeasible: %v", err)
	}
}

func TestSolveEmpty(t *testing.T) {
	in := ise.NewInstance(10, 1)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumCalibrations() != 0 {
		t.Errorf("empty instance: %d calibrations", res.Schedule.NumCalibrations())
	}
}

func TestSolveAgainstExactRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	worst := 0.0
	trials := 0
	for trials < 10 {
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1,
			T:                      10,
			CalibrationsPerMachine: 1 + rng.Intn(2),
			Window:                 workload.AnyWindow,
		})
		if inst.N() == 0 || inst.N() > 7 {
			continue
		}
		trials++
		res, err := Solve(inst, Options{MM: mm.Exact{}})
		if err != nil {
			t.Fatalf("%v", err)
		}
		if err := ise.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		opt, err := exact.Solve(inst, exact.Options{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		ratio := float64(res.Schedule.NumCalibrations()) / float64(opt.Calibrations)
		if ratio > worst {
			worst = ratio
		}
		// Theorem 1 with alpha = 1 and the paper's constants: the
		// combined bound is far below 28 = 12 + 16*gamma/2; use the
		// loosest published constant as a hard ceiling.
		if ratio > 64 {
			t.Errorf("ratio %v implausibly high (alg %d, opt %d)", ratio, res.Schedule.NumCalibrations(), opt.Calibrations)
		}
	}
	t.Logf("worst observed end-to-end ratio over %d trials: %.2f", trials, worst)
}

func TestSolveEngineOption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst, _ := workload.Long(rng, 5, 1, 8)
	res, err := Solve(inst, Options{Engine: tise.Rational})
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("rational-engine schedule infeasible: %v", err)
	}
}

func TestSolveInvalidInstance(t *testing.T) {
	in := ise.NewInstance(1, 1) // T too small
	in.AddJob(0, 5, 1)
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}
