package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calib/internal/ise"
	"calib/internal/workload"
)

// TestQuickSolveAlwaysFeasible: for arbitrary planted configurations
// and gamma thresholds, the combined pipeline must produce a feasible
// schedule covering every job.
func TestQuickSolveAlwaysFeasible(t *testing.T) {
	prop := func(seed int64, mRaw, TRaw, winRaw, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, _ := workload.Planted(rng, workload.PlantedConfig{
			Machines:               1 + int(mRaw%3),
			T:                      ise.Time(3 + TRaw%12),
			CalibrationsPerMachine: 1 + rng.Intn(2),
			Window:                 workload.WindowKind(winRaw % 3),
		})
		gamma := 2 + int(gRaw%3)
		res, err := Solve(inst, Options{Gamma: gamma})
		if err != nil {
			return false
		}
		return ise.Validate(inst, res.Schedule) == nil &&
			res.LongJobs+res.ShortJobs == inst.N()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
