package core

import (
	"math/rand"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

func TestGammaRouting(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 25, 5) // window 2.5T
	in.AddJob(0, 45, 5) // window 4.5T

	// gamma=2: both long.
	r2, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.LongJobs != 2 || r2.ShortJobs != 0 {
		t.Errorf("gamma=2 partition = %d/%d, want 2/0", r2.LongJobs, r2.ShortJobs)
	}
	// gamma=3: the 2.5T window becomes short.
	r3, err := Solve(in, Options{Gamma: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.LongJobs != 1 || r3.ShortJobs != 1 {
		t.Errorf("gamma=3 partition = %d/%d, want 1/1", r3.LongJobs, r3.ShortJobs)
	}
	for _, r := range []*Result{r2, r3} {
		if err := ise.Validate(in, r.Schedule); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
	}
}

func TestGammaInvalid(t *testing.T) {
	in := ise.NewInstance(10, 1)
	in.AddJob(0, 25, 5)
	if _, err := Solve(in, Options{Gamma: 1}); err == nil {
		t.Error("gamma=1 accepted")
	}
}

func TestGammaSweepEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	inst, _ := workload.Mixed(rng, 14, 1, 10, 0.5)
	for _, gamma := range []int{2, 3, 4} {
		res, err := Solve(inst, Options{Gamma: gamma})
		if err != nil {
			t.Fatalf("gamma=%d: %v", gamma, err)
		}
		if err := ise.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("gamma=%d: infeasible: %v", gamma, err)
		}
		if res.LongJobs+res.ShortJobs != inst.N() {
			t.Errorf("gamma=%d: partition %d+%d != %d", gamma, res.LongJobs, res.ShortJobs, inst.N())
		}
	}
}

func TestTimingsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	inst, _ := workload.Mixed(rng, 12, 1, 10, 0.5)
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LongJobs > 0 && res.LongTime <= 0 {
		t.Error("LongTime not recorded")
	}
	if res.ShortJobs > 0 && res.ShortTime <= 0 {
		t.Error("ShortTime not recorded")
	}
	if res.Long != nil && res.Long.Timing.LP <= 0 {
		t.Error("LP timing not recorded")
	}
}
