package calib_test

import (
	"fmt"

	"calib"
)

// Example shows the minimal end-to-end flow: build an instance, solve,
// validate, read the objective.
func Example() {
	inst := calib.NewInstance(10, 1) // calibration length T=10, 1 machine
	inst.AddJob(0, 100, 5)           // release 0, deadline 100, processing 5
	inst.AddJob(90, 100, 5)
	sol, err := calib.Solve(inst, nil)
	if err != nil {
		panic(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		panic(err)
	}
	fmt.Println("feasible:", true)
	fmt.Println("lower bound:", sol.LowerBound)
	// Output:
	// feasible: true
	// lower bound: 1
}

// ExampleSolveExact demonstrates the hallmark of calibration
// scheduling: delaying a calibration lets distant jobs share it.
func ExampleSolveExact() {
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 100, 5)  // flexible job
	inst.AddJob(90, 100, 5) // forced late
	_, calibrations, err := calib.SolveExact(inst, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal calibrations:", calibrations)
	// Output:
	// optimal calibrations: 1
}

// ExampleSolveLazy runs the practical heuristic and inspects the
// schedule it produced.
func ExampleSolveLazy() {
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 100, 5)
	inst.AddJob(90, 100, 5)
	sched, err := calib.SolveLazy(inst, 0)
	if err != nil {
		panic(err)
	}
	sched.SortCanonical()
	fmt.Println("calibrations:", sched.NumCalibrations())
	for _, c := range sched.Calibrations {
		fmt.Printf("machine %d calibrated at %d\n", c.Machine, c.Start)
	}
	// Output:
	// calibrations: 1
	// machine 0 calibrated at 90
}

// ExampleLazyBinning reproduces the unit-job baseline's optimal
// delaying behavior.
func ExampleLazyBinning() {
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 100, 1)
	inst.AddJob(95, 100, 1)
	sched, err := calib.LazyBinning(inst)
	if err != nil {
		panic(err)
	}
	fmt.Println("calibrations:", sched.NumCalibrations())
	// Output:
	// calibrations: 1
}

// ExampleLowerBound shows the combinatorial lower bound on a two-burst
// campaign whose bursts are too far apart to share calibrations.
func ExampleLowerBound() {
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 20, 4)
	inst.AddJob(500, 520, 4)
	fmt.Println("lower bound:", calib.LowerBound(inst))
	// Output:
	// lower bound: 2
}
