#!/bin/sh
# End-to-end smoke test of the isedfleet router, as run by CI's fleet
# job:
#
#   1. boot three ised backends and one isedfleet router over them
#      (all via the -addr-file handshake, roster from a watched JSON
#      file);
#   2. the router's /v1/healthz reports 3 healthy nodes under the
#      hash-affinity policy;
#   3. a solve through the router lands on exactly one backend
#      (X-Fleet-Node), and the identical re-solve is a cache hit on
#      the SAME backend — cache affinity over HTTP, not just in tests;
#   4. a uniformly shifted variant of the instance (same canonical
#      key) also hits that node's cache: the fleet solved the
#      equivalence class once;
#   5. under a stream of solves, SIGKILL the backend that owns the
#      probe instance. The stream keeps succeeding, the router ejects
#      the corpse (healthz degraded, fleet_eject_total=1), and a key
#      owned by a survivor still routes to that same survivor — the
#      ring moved only the dead node's keys;
#   6. the probe instance — solved BEFORE the kill — is still a cache
#      HIT: the router peeks the key's ring replica, which holds the
#      write-behind copy, and answers "cached": true with
#      X-Fleet-Route: replica-hit. The fleet never re-runs a solve it
#      already paid for;
#   7. restart the killed backend on its old address. The prober takes
#      it through the warming state — hinted handoff + snapshot-diff
#      warm transfer — and once healthy the probe instance routes back
#      to its affinity owner and hits the owner's (restored) cache.
#
# Needs only curl, awk, and the go toolchain. Exits non-zero on the
# first broken expectation.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=""
CLEANED=0
# Idempotent cleanup, run on normal exit, on failed assertions, and on
# delivered signals (see service_smoke.sh for the rationale). One of
# the backends may already be SIGKILLed by the test itself; kill/wait
# on a reaped pid is harmless under `|| true`.
cleanup() {
	[ "$CLEANED" -eq 1 ] && return 0
	CLEANED=1
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
	rm -rf "$WORK"
}
trap cleanup EXIT
trap 'cleanup; exit 129' HUP
trap 'cleanup; exit 130' INT
trap 'cleanup; exit 143' TERM

fail() {
	echo "fleet_smoke: $*" >&2
	exit 1
}

wait_addr() { # wait_addr FILE -> prints host:port
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		[ "$i" -le 100 ] || fail "daemon never wrote $1"
		sleep 0.1
	done
	cat "$1"
}

header() { # header FILE lowercase-name -> prints the value, trimmed
	awk -v n="$2" 'BEGIN { FS = ": " } tolower($1) == n { print $2 }' "$1" |
		tr -d '\r\n'
}

go build -o "$WORK/ised" ./cmd/ised
go build -o "$WORK/isedfleet" ./cmd/isedfleet
go build -o "$WORK/isegen" ./cmd/isegen

# --- backends --------------------------------------------------------
for i in 1 2 3; do
	"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/baddr$i" \
		-timeout 10s 2>"$WORK/ised$i.log" &
	eval "BPID$i=\$!"
	PIDS="$PIDS $!"
done
B1="$(wait_addr "$WORK/baddr1")"
B2="$(wait_addr "$WORK/baddr2")"
B3="$(wait_addr "$WORK/baddr3")"

cat >"$WORK/roster.json" <<EOF
{"nodes": [
  {"name": "n1", "url": "http://$B1"},
  {"name": "n2", "url": "http://$B2"},
  {"name": "n3", "url": "http://$B3"}
]}
EOF

# --- router ----------------------------------------------------------
# Aggressive probe/eject settings so the kill is detected within a
# couple hundred milliseconds instead of the operator-friendly default.
# Replication is pinned to its default (2) and hints spill to disk so
# the readmit phase exercises the full durability path.
"$WORK/isedfleet" -addr 127.0.0.1:0 -addr-file "$WORK/faddr" \
	-roster "$WORK/roster.json" -roster-interval 200ms \
	-probe-interval 100ms -probe-timeout 1s \
	-fail-after 2 -readmit-after 1 \
	-replication 2 -hint-dir "$WORK/hints" 2>"$WORK/fleet.log" &
PIDS="$PIDS $!"
FADDR="$(wait_addr "$WORK/faddr")"
BASE="http://$FADDR"
echo "fleet_smoke: router on $BASE over n1=$B1 n2=$B2 n3=$B3"

curl -sf "$BASE/v1/healthz" >"$WORK/health.json"
grep -q '"status": "ok"' "$WORK/health.json" || fail "healthz not ok: $(cat "$WORK/health.json")"
grep -q '"healthy_nodes": 3' "$WORK/health.json" || fail "healthz not 3 nodes: $(cat "$WORK/health.json")"
grep -q '"policy": "hash-affinity"' "$WORK/health.json" || fail "unexpected policy"

# --- cache affinity over HTTP ----------------------------------------
"$WORK/isegen" -family mixed -n 16 -m 2 -seed 7 >"$WORK/inst.json"
printf '{"instance": %s}' "$(cat "$WORK/inst.json")" >"$WORK/req.json"

curl -sf -D "$WORK/h1" -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve1.json"
grep -q '"cached": false' "$WORK/solve1.json" || fail "first solve claims cached"
grep -q '"schedule"' "$WORK/solve1.json" || fail "first solve has no schedule"
OWNER="$(header "$WORK/h1" x-fleet-node)"
[ -n "$OWNER" ] || fail "no X-Fleet-Node on the routed response"
ROUTE="$(header "$WORK/h1" x-fleet-route)"
[ "$ROUTE" = "affinity" ] || fail "healthy-fleet route = '$ROUTE', want affinity"

curl -sf -D "$WORK/h2" -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve2.json"
grep -q '"cached": true' "$WORK/solve2.json" || fail "re-solve missed the owner's cache"
[ "$(header "$WORK/h2" x-fleet-node)" = "$OWNER" ] || fail "re-solve routed off the owner"

# A uniformly shifted twin (same canonical key) must hit the same cache
# entry on the same node.
awk '{
	out = ""
	# Consume left to right so the rewritten text is never re-matched.
	while (match($0, /"(release|deadline)": [0-9]+/)) {
		seg = substr($0, RSTART, RLENGTH)
		colon = index(seg, ":")
		v = substr(seg, colon + 2) + 500
		out = out substr($0, 1, RSTART - 1) substr(seg, 1, colon + 1) v
		$0 = substr($0, RSTART + RLENGTH)
	}
	print out $0
}' "$WORK/inst.json" >"$WORK/shifted.json"
printf '{"instance": %s}' "$(cat "$WORK/shifted.json")" >"$WORK/sreq.json"
curl -sf -D "$WORK/h3" -d @"$WORK/sreq.json" "$BASE/v1/solve" >"$WORK/solve3.json"
grep -q '"cached": true' "$WORK/solve3.json" || fail "shifted twin missed the cache"
[ "$(header "$WORK/h3" x-fleet-node)" = "$OWNER" ] || fail "shifted twin routed off the owner"
echo "fleet_smoke: cache affinity confirmed (owner $OWNER serves the equivalence class)"

# A survivor-owned key, for the post-kill affinity check: find an
# instance owned by some node other than $OWNER.
SURV_NODE=""
for seed in 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26; do
	"$WORK/isegen" -family mixed -n 12 -m 2 -seed "$seed" >"$WORK/sv.json"
	printf '{"instance": %s}' "$(cat "$WORK/sv.json")" >"$WORK/svreq.json"
	curl -sf -D "$WORK/svh" -d @"$WORK/svreq.json" "$BASE/v1/solve" >/dev/null
	SURV_NODE="$(header "$WORK/svh" x-fleet-node)"
	if [ -n "$SURV_NODE" ] && [ "$SURV_NODE" != "$OWNER" ]; then
		cp "$WORK/svreq.json" "$WORK/survivor-req.json"
		break
	fi
	SURV_NODE=""
done
[ -n "$SURV_NODE" ] || fail "no instance owned by a survivor in 16 draws"

# --- kill the owner mid-load -----------------------------------------
# Background stream of distinct solves; each must end in HTTP 200
# (possibly after the client-side retry below), recorded per request.
stream() { # stream SLOT
	for n in 1 2 3 4 5 6 7 8 9 10; do
		"$WORK/isegen" -family clustered -n 24 -m 2 -seed "$((900 + $1 * 50 + n))" >"$WORK/st$1-$n.json"
		printf '{"instance": %s}' "$(cat "$WORK/st$1-$n.json")" >"$WORK/streq$1-$n.json"
		code=000
		for attempt in 1 2 3; do
			code="$(curl -s -o /dev/null -w '%{http_code}' \
				-d @"$WORK/streq$1-$n.json" "$BASE/v1/solve" || echo 000)"
			[ "$code" = "200" ] && break
			sleep 0.2
		done
		echo "$code" >>"$WORK/stream$1.codes"
	done
}
for slot in 1 2 3 4; do
	stream "$slot" &
	PIDS="$PIDS $!"
	eval "SPID$slot=\$!"
done

# Let the stream flow, then SIGKILL the owner of the probe instance.
sleep 0.5
case "$OWNER" in
n1) eval "kill -9 \$BPID1" ;;
n2) eval "kill -9 \$BPID2" ;;
n3) eval "kill -9 \$BPID3" ;;
*) fail "unknown owner node '$OWNER'" ;;
esac
echo "fleet_smoke: SIGKILLed $OWNER mid-load"

for slot in 1 2 3 4; do
	eval "wait \$SPID$slot" || true
done
for slot in 1 2 3 4; do
	[ "$(grep -c '^200$' "$WORK/stream$slot.codes")" -eq 10 ] ||
		fail "stream $slot saw non-200s across the kill: $(tr '\n' ' ' <"$WORK/stream$slot.codes")"
done
echo "fleet_smoke: 40/40 streamed solves succeeded across the kill"

# The router must have ejected the corpse by now (probes every 100ms,
# two failures eject); poll briefly to absorb scheduler jitter.
i=0
until curl -sf "$BASE/v1/healthz" | grep -q '"status": "degraded"'; do
	i=$((i + 1))
	[ "$i" -le 50 ] || fail "router never ejected the killed backend"
	sleep 0.1
done
curl -sf "$BASE/v1/healthz" >"$WORK/health2.json"
grep -q '"healthy_nodes": 2' "$WORK/health2.json" || fail "degraded healthz: $(cat "$WORK/health2.json")"

# The probe instance (owned by the corpse, solved before the kill) is
# still a cache HIT: the router peeks the key's ring replica — which
# holds the asynchronous write-behind copy — and relays its cached
# schedule without admitting a solve anywhere.
curl -sf -D "$WORK/h4" -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve4.json"
grep -q '"schedule"' "$WORK/solve4.json" || fail "post-kill solve has no schedule"
grep -q '"cached": true' "$WORK/solve4.json" ||
	fail "pre-kill key re-solved after the owner died: the replica write never landed"
DETOUR="$(header "$WORK/h4" x-fleet-node)"
[ -n "$DETOUR" ] && [ "$DETOUR" != "$OWNER" ] || fail "post-kill solve served by '$DETOUR'"
[ "$(header "$WORK/h4" x-fleet-route)" = "replica-hit" ] ||
	fail "post-kill route = '$(header "$WORK/h4" x-fleet-route)', want replica-hit"
echo "fleet_smoke: pre-kill key served from replica cache ($DETOUR, no re-solve)"

# Survivors keep their own keys: the survivor-owned instance still
# routes to the same node it did before the kill.
curl -sf -D "$WORK/h5" -d @"$WORK/survivor-req.json" "$BASE/v1/solve" >"$WORK/solve5.json"
grep -q '"cached": true' "$WORK/solve5.json" || fail "survivor-owned re-solve missed its cache"
[ "$(header "$WORK/h5" x-fleet-node)" = "$SURV_NODE" ] ||
	fail "survivor key moved: $(header "$WORK/h5" x-fleet-node) != $SURV_NODE"
echo "fleet_smoke: survivors kept affinity ($SURV_NODE still owns its key)"

# The ejection, the detours, and the replication layer's work are all
# visible on the router's /metrics.
curl -sf "$BASE/metrics" >"$WORK/fmetrics.txt"
awk '$1 == "fleet_eject_total" && $2 >= 1 { ok = 1 } END { exit !ok }' "$WORK/fmetrics.txt" ||
	fail "fleet_eject_total not incremented"
awk '/^fleet_spillover_total\{/ { s += $2 } END { exit !(s > 0) }' "$WORK/fmetrics.txt" ||
	fail "no fleet_spillover_total counted across the kill"
awk '$1 == "fleet_replicate_sent_total" && $2 >= 1 { ok = 1 } END { exit !ok }' "$WORK/fmetrics.txt" ||
	fail "fleet_replicate_sent_total not incremented: write-behind never delivered"
awk '$1 == "fleet_replica_hit_total" && $2 >= 1 { ok = 1 } END { exit !ok }' "$WORK/fmetrics.txt" ||
	fail "fleet_replica_hit_total not incremented"

# --- readmit with warm transfer --------------------------------------
# Restart the killed backend on its old address: the prober must take
# it through warming (hint replay + snapshot-diff transfer) and back to
# healthy, after which the probe key routes to its affinity owner again
# and hits the restored cache.
case "$OWNER" in
n1) OADDR="$B1" ;;
n2) OADDR="$B2" ;;
n3) OADDR="$B3" ;;
esac
"$WORK/ised" -addr "$OADDR" -addr-file "$WORK/baddr-re" \
	-timeout 10s 2>"$WORK/ised-re.log" &
PIDS="$PIDS $!"
wait_addr "$WORK/baddr-re" >/dev/null
echo "fleet_smoke: restarted $OWNER on $OADDR"

i=0
until curl -sf "$BASE/v1/healthz" | grep -q '"healthy_nodes": 3'; do
	i=$((i + 1))
	[ "$i" -le 150 ] || fail "router never readmitted the restarted backend"
	sleep 0.1
done
curl -sf "$BASE/v1/healthz" | grep -q '"status": "ok"' || fail "healthz degraded after readmit"

curl -sf "$BASE/metrics" >"$WORK/fmetrics2.txt"
awk '$1 == "fleet_warm_transfer_total" && $2 >= 1 { ok = 1 } END { exit !ok }' "$WORK/fmetrics2.txt" ||
	fail "fleet_warm_transfer_total not incremented on readmit"
awk '$1 == "fleet_warm_transfer_entries_total" && $2 >= 1 { ok = 1 } END { exit !ok }' "$WORK/fmetrics2.txt" ||
	fail "warm transfer shipped no entries"

# The probe key is back on its owner — and the owner, freshly
# restarted with an empty cache of its own, answers from the entries
# the warm transfer restored.
curl -sf -D "$WORK/h6" -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve6.json"
grep -q '"cached": true' "$WORK/solve6.json" ||
	fail "post-readmit solve missed: warm transfer did not restore the key"
[ "$(header "$WORK/h6" x-fleet-node)" = "$OWNER" ] ||
	fail "post-readmit solve served by '$(header "$WORK/h6" x-fleet-node)', want $OWNER"
[ "$(header "$WORK/h6" x-fleet-route)" = "affinity" ] ||
	fail "post-readmit route = '$(header "$WORK/h6" x-fleet-route)', want affinity"
echo "fleet_smoke: warm transfer restored $OWNER's cache (affinity hit after readmit)"

echo "fleet_smoke: OK"
