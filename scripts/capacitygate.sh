#!/bin/sh
# Capacity regression + determinism gate, as run by CI's capacity job.
#
# For each pinned workload spec under testdata/sim/ (steady: sustained
# Poisson/gamma load; burst: Weibull bursts over a steady background),
# isesim drives the real server mux under a virtual clock and writes a
# capacity report. Two gates per spec:
#
#   1. determinism — the same seeded spec is simulated twice and the
#      two report files are compared byte for byte. Any divergence
#      means a nondeterministic code path leaked into the serving
#      stack (map iteration, wall-clock read, racy tie-break) and
#      fails the build;
#   2. regression — the report is compared against the committed
#      baseline BENCH_capacity.json; a policy whose per-class p99 or
#      shed rate regressed by more than CAPACITYGATE_TOL (default
#      10%) past the noise floors fails the build.
#
# An intended capacity change is committed by regenerating the
# baseline:  ./scripts/capacitygate.sh -update
#
# Usage: ./scripts/capacitygate.sh [-update]
# Env:   CAPACITYGATE_TOL (default 0.10)
set -eu
cd "$(dirname "$0")/.."

SPECS="testdata/sim/steady.json testdata/sim/burst.json"
BASELINE="BENCH_capacity.json"
TOL="${CAPACITYGATE_TOL:-0.10}"
UPDATE=0
[ "${1:-}" = "-update" ] && UPDATE=1

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "capacitygate: building isesim"
go build -o "$WORK/isesim" ./cmd/isesim

REPORTS=""
for spec in $SPECS; do
	name="$(basename "$spec" .json)"
	echo "capacitygate: $name: simulating twice for the determinism gate"
	"$WORK/isesim" -spec "$spec" -out "$WORK/$name.a.json"
	"$WORK/isesim" -spec "$spec" -out "$WORK/$name.b.json"
	if ! cmp -s "$WORK/$name.a.json" "$WORK/$name.b.json"; then
		echo "capacitygate: FAIL — $name diverged between two runs of the same seed:" >&2
		diff "$WORK/$name.a.json" "$WORK/$name.b.json" >&2 || true
		exit 1
	fi
	echo "capacitygate: $name: byte-identical reports (determinism ok)"
	REPORTS="$REPORTS $WORK/$name.a.json"

	if [ "$UPDATE" -eq 0 ]; then
		[ -f "$BASELINE" ] || {
			echo "capacitygate: $BASELINE missing; run ./scripts/capacitygate.sh -update and commit it" >&2
			exit 1
		}
		"$WORK/isesim" -spec "$spec" -out "$WORK/$name.gated.json" \
			-baseline "$BASELINE" -tolerance "$TOL" || {
			echo "capacitygate: FAIL — $name regressed vs $BASELINE" >&2
			exit 1
		}
	fi
done

if [ "$UPDATE" -eq 1 ]; then
	# Merge the per-spec reports into the committed {"runs": [...]}
	# baseline (isesim's LoadBaseline resolves runs by workload name).
	{
		printf '{\n  "runs": [\n'
		first=1
		for f in $REPORTS; do
			[ "$first" -eq 1 ] || printf ',\n'
			first=0
			awk '{ printf "%s    %s", sep, $0; sep = "\n" }' "$f"
		done
		printf '\n  ]\n}\n'
	} >"$BASELINE"
	echo "capacitygate: wrote $BASELINE — review and commit it"
else
	echo "capacitygate: OK (within ${TOL} of $BASELINE)"
fi
