#!/bin/sh
# End-to-end smoke test of the ised daemon, as run by CI's service job:
#
#   1. boot ised on a free port (-addr-file handshake);
#   2. /v1/healthz answers ok;
#   3. /v1/solve answers a feasible schedule with "cached": false;
#   4. the identical re-solve answers "cached": true, and /metrics
#      shows cache_hits_total > 0 — the canonical cache actually
#      served it;
#   5. a client-sent X-Request-ID comes back in the response header and
#      body, the request is locatable at /debug/requests/{id} with its
#      admission verdict and cache outcome, and the -trace-log file
#      holds the same record after real traffic;
#   6. a burst of distinct solves against a second daemon with
#      -max-inflight 1 and no queue sheds at least one request with
#      429 + Retry-After — admission control actually refuses, it
#      doesn't queue without bound.
#
# Needs only curl and the go toolchain. Exits non-zero on the first
# broken expectation.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=""
CLEANED=0
# Idempotent cleanup, run on normal exit, on any failed assertion (the
# EXIT trap fires for `exit 1` under set -e too), and on delivered
# signals — without the signal traps a ^C or a CI runner's TERM during
# a mid-script wait could leave both daemons running. The guard makes
# the signal-then-EXIT double invocation harmless.
cleanup() {
	[ "$CLEANED" -eq 1 ] && return 0
	CLEANED=1
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
	rm -rf "$WORK"
}
trap cleanup EXIT
trap 'cleanup; exit 129' HUP
trap 'cleanup; exit 130' INT
trap 'cleanup; exit 143' TERM

fail() {
	echo "service_smoke: $*" >&2
	exit 1
}

wait_addr() { # wait_addr FILE -> prints host:port
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		[ "$i" -le 100 ] || fail "daemon never wrote $1"
		sleep 0.1
	done
	cat "$1"
}

go build -o "$WORK/ised" ./cmd/ised
go build -o "$WORK/isegen" ./cmd/isegen
"$WORK/isegen" -family mixed -n 16 -m 2 -seed 7 >"$WORK/inst.json"
printf '{"instance": %s}' "$(cat "$WORK/inst.json")" >"$WORK/req.json"

# Burst instances for the saturation check, distinct per (round, slot):
# different seeds -> different canonical keys, so neither the cache nor
# singleflight can absorb the burst, and a retry round can't be served
# by the previous round's cache entries.
for round in 1 2 3 4 5; do
	for seed in 1 2 3 4 5 6 7 8; do
		"$WORK/isegen" -family clustered -n 48 -m 2 -seed "$((round * 100 + seed))" \
			>"$WORK/burst.json"
		printf '{"instance": %s}' "$(cat "$WORK/burst.json")" \
			>"$WORK/breq$round-$seed.json"
	done
done

# --- main daemon -----------------------------------------------------
"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
	-timeout 10s -trace-log "$WORK/trace.jsonl" 2>"$WORK/ised.log" &
PIDS="$PIDS $!"
ADDR="$(wait_addr "$WORK/addr")"
BASE="http://$ADDR"
echo "service_smoke: daemon on $BASE"

# healthz
curl -sf "$BASE/v1/healthz" >"$WORK/health.json"
grep -q '"status": "ok"' "$WORK/health.json" || fail "healthz not ok: $(cat "$WORK/health.json")"

# first solve: fresh
curl -sf -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve1.json"
grep -q '"cached": false' "$WORK/solve1.json" || fail "first solve claims cached"
grep -q '"schedule"' "$WORK/solve1.json" || fail "first solve has no schedule"

# identical re-solve: from the cache
curl -sf -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve2.json"
grep -q '"cached": true' "$WORK/solve2.json" || fail "re-solve missed the cache"

# the cache hit is visible on /metrics
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
HITS="$(awk '$1 == "cache_hits_total" { print $2 }' "$WORK/metrics.txt")"
[ "${HITS:-0}" -gt 0 ] 2>/dev/null || fail "cache_hits_total = '${HITS:-}' after a cached re-solve"
echo "service_smoke: cached re-solve confirmed (cache_hits_total=$HITS)"

# --- request tracing -------------------------------------------------
# A client-sent X-Request-ID is echoed end to end: response header,
# response body, the flight recorder at /debug/requests/{id}, and the
# -trace-log JSONL file.
RID="smoke-req-1"
curl -sf -H "X-Request-Id: $RID" -D "$WORK/solve3.head" \
	-d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve3.json"
grep -qi "^x-request-id: $RID" "$WORK/solve3.head" || fail "X-Request-ID not echoed in header"
grep -q "\"request_id\": \"$RID\"" "$WORK/solve3.json" || fail "request_id missing from response body"

curl -sf "$BASE/debug/requests/$RID" >"$WORK/flight.json"
grep -q "\"id\": \"$RID\"" "$WORK/flight.json" || fail "request not in flight recorder: $(cat "$WORK/flight.json")"
grep -q '"admission": "bypass"' "$WORK/flight.json" || fail "cached re-solve record lacks admission bypass"
grep -q '"cache": "hit"' "$WORK/flight.json" || fail "cached re-solve record lacks cache hit"
curl -sf "$BASE/debug/requests?route=solve" >"$WORK/flights.json"
grep -q '"slo"' "$WORK/flights.json" || fail "/debug/requests missing SLO status"

# The trace log fills within a flush interval (200ms) of real traffic.
i=0
while ! grep -qs "\"id\":\"$RID\"" "$WORK/trace.jsonl"; do
	i=$((i + 1))
	[ "$i" -le 50 ] || fail "trace log never recorded $RID: $(wc -c <"$WORK/trace.jsonl" 2>/dev/null || echo missing) bytes"
	sleep 0.1
done
[ -s "$WORK/trace.jsonl" ] || fail "trace log empty after traffic"
grep -q '"crc":' "$WORK/trace.jsonl" || fail "trace log lines not CRC-framed"
echo "service_smoke: request-ID propagation + trace log confirmed ($RID)"

# --- saturation daemon: one slot, no queue ---------------------------
"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/addr2" \
	-max-inflight 1 -max-queue -1 -timeout 10s 2>"$WORK/ised2.log" &
PIDS="$PIDS $!"
ADDR2="$(wait_addr "$WORK/addr2")"
BASE2="http://$ADDR2"

# A few rounds guard against all solves finishing too fast to overlap
# on a loaded runner.
SHED=0
for round in 1 2 3 4 5; do
	CURLS=""
	for seed in 1 2 3 4 5 6 7 8; do
		curl -s -o /dev/null -D "$WORK/bhead$seed" -w '%{http_code}\n' \
			-d @"$WORK/breq$round-$seed.json" "$BASE2/v1/solve" >"$WORK/bcode$seed" &
		CURLS="$CURLS $!"
	done
	for pid in $CURLS; do wait "$pid" 2>/dev/null || true; done
	for seed in 1 2 3 4 5 6 7 8; do
		if grep -q '^429$' "$WORK/bcode$seed" 2>/dev/null; then
			SHED=1
			grep -qi '^retry-after:' "$WORK/bhead$seed" || fail "429 without Retry-After"
		fi
	done
	[ "$SHED" -eq 1 ] && break
done
[ "$SHED" -eq 1 ] || fail "no request shed across 5 saturation rounds"
grep -qi 'retry-after' "$WORK"/bhead* || fail "Retry-After header missing"
echo "service_smoke: saturation produced 429 + Retry-After"

# shed count visible on the saturated daemon's metrics
curl -sf "$BASE2/metrics" | awk '$1 == "service_shed_total" && $2 > 0 { ok = 1 } END { exit !ok }' ||
	fail "service_shed_total not incremented"

echo "service_smoke: OK"
