#!/bin/sh
# Kill-test of the crash-safe state layer, as run by CI's chaos job:
#
#   1. an ised daemon with -cache-file and periodic snapshots is
#      SIGKILLed (no drain, no final save); a replacement booted from
#      the snapshot serves the prior solve with "cached": true and
#      cache_restore_entries_total > 0;
#   2. the snapshot is damaged on disk (torn tail); the daemon still
#      boots, still answers solves, and counts the damage in
#      cache_restore_corrupt_total;
#   3. an isebatch -checkpoint run is SIGKILLed mid-flight; re-running
#      the same command resumes from the journal and the final CSV
#      matches an uninterrupted run row-for-row (modulo the wall-clock
#      column);
#   4. SIGTERM with -drain-wait flips healthz to 503 + "draining": true
#      before the listener closes.
#
# Needs only curl and the go toolchain. Exits non-zero on the first
# broken expectation. The in-process half of these guarantees lives in
# chaos_conformance_test.go.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
	rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
	echo "chaos_smoke: $*" >&2
	exit 1
}

wait_addr() { # wait_addr FILE -> prints host:port
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		[ "$i" -le 100 ] || fail "daemon never wrote $1"
		sleep 0.1
	done
	cat "$1"
}

metric() { # metric BASE NAME -> prints the value (0 if absent)
	curl -sf "$1/metrics" | awk -v n="$2" '$1 == n { v = $2 } END { print v + 0 }'
}

fsize() { # bytes in FILE, 0 if absent
	(wc -c <"$1") 2>/dev/null || echo 0
}

flines() { # lines in FILE, 0 if absent
	(wc -l <"$1") 2>/dev/null || echo 0
}

# Strip the nondeterministic wall-clock column (field 8: ms) so batch
# reports can be compared row-for-row.
strip_ms() {
	awk -F, 'BEGIN { OFS = "," } { $8 = ""; print }' "$1"
}

go build -o "$WORK/ised" ./cmd/ised
go build -o "$WORK/isebatch" ./cmd/isebatch
go build -o "$WORK/isegen" ./cmd/isegen
"$WORK/isegen" -family mixed -n 16 -m 2 -seed 7 >"$WORK/inst.json"
printf '{"instance": %s}' "$(cat "$WORK/inst.json")" >"$WORK/req.json"
SNAP="$WORK/cache.snap"

# --- 1. SIGKILL the daemon; restart from the periodic snapshot -------
"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/addr1" \
	-cache-file "$SNAP" -cache-save-interval 200ms \
	-timeout 10s 2>"$WORK/ised1.log" &
KILLPID=$!
PIDS="$PIDS $KILLPID"
BASE="http://$(wait_addr "$WORK/addr1")"

curl -sf -d @"$WORK/req.json" "$BASE/v1/solve" >"$WORK/solve1.json"
grep -q '"cached": false' "$WORK/solve1.json" || fail "first solve claims cached"
grep -q '"schedule"' "$WORK/solve1.json" || fail "first solve has no schedule"

# Wait for a periodic save that contains the entry (the header alone
# is 8 bytes; a real entry pushes the snapshot well past that).
i=0
while [ "$(fsize "$SNAP")" -le 64 ]; do
	i=$((i + 1))
	[ "$i" -le 100 ] || fail "periodic saver never snapshotted the entry"
	sleep 0.1
done

kill -9 "$KILLPID"
wait "$KILLPID" 2>/dev/null || true
echo "chaos_smoke: daemon SIGKILLed with $(wc -c <"$SNAP") snapshot bytes on disk"

"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/addr2" \
	-cache-file "$SNAP" -timeout 10s 2>"$WORK/ised2.log" &
PIDS="$PIDS $!"
BASE2="http://$(wait_addr "$WORK/addr2")"

curl -sf -d @"$WORK/req.json" "$BASE2/v1/solve" >"$WORK/solve2.json"
grep -q '"cached": true' "$WORK/solve2.json" ||
	fail "restarted daemon did not serve the prior hit from its snapshot"
RESTORED="$(metric "$BASE2" cache_restore_entries_total)"
[ "$RESTORED" -gt 0 ] || fail "cache_restore_entries_total = $RESTORED after restore"
echo "chaos_smoke: restart served the prior solve from cache (restored=$RESTORED)"

# --- 2. damaged snapshot: boot survives, damage is counted -----------
SIZE="$(wc -c <"$SNAP")"
head -c "$((SIZE - 3))" "$SNAP" >"$SNAP.torn" && mv "$SNAP.torn" "$SNAP"
"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/addr3" \
	-cache-file "$SNAP" -timeout 10s 2>"$WORK/ised3.log" &
PIDS="$PIDS $!"
BASE3="http://$(wait_addr "$WORK/addr3")"

curl -sf "$BASE3/v1/healthz" | grep -q '"status": "ok"' ||
	fail "daemon with a torn snapshot is not healthy"
CORRUPT="$(metric "$BASE3" cache_restore_corrupt_total)"
[ "$CORRUPT" -gt 0 ] || fail "cache_restore_corrupt_total = $CORRUPT after torn snapshot"
curl -sf -d @"$WORK/req.json" "$BASE3/v1/solve" >"$WORK/solve3.json"
grep -q '"schedule"' "$WORK/solve3.json" || fail "torn-snapshot daemon cannot solve"
echo "chaos_smoke: torn snapshot survived (corrupt=$CORRUPT), daemon still serves"

# --- 3. SIGKILL isebatch mid-run; resume from the checkpoint ---------
mkdir "$WORK/corpus"
for seed in 1 2 3 4 5 6 7 8; do
	"$WORK/isegen" -family mixed -n 20 -m 2 -seed "$seed" \
		>"$WORK/corpus/inst$seed.json"
done

# Baseline: an uninterrupted run of the identical command.
"$WORK/isebatch" -workers 1 -checkpoint "$WORK/ck-full.jsonl" \
	-csv "$WORK/full.csv" "$WORK/corpus" >/dev/null 2>&1 ||
	fail "baseline batch run failed"

# Doomed run: same corpus, killed as soon as the journal has rows.
"$WORK/isebatch" -workers 1 -checkpoint "$WORK/ck.jsonl" \
	-csv "$WORK/doomed.csv" "$WORK/corpus" >/dev/null 2>"$WORK/doomed.log" &
BATCHPID=$!
PIDS="$PIDS $BATCHPID"
i=0
while [ "$(flines "$WORK/ck.jsonl")" -lt 3 ]; do
	i=$((i + 1))
	[ "$i" -le 200 ] || break # finished before we could kill it: still a valid resume
	sleep 0.05
done
kill -9 "$BATCHPID" 2>/dev/null || true
wait "$BATCHPID" 2>/dev/null || true
echo "chaos_smoke: batch SIGKILLed with $(flines "$WORK/ck.jsonl") journal lines"

# Resume: same command again; checkpointed rows replay, the rest solve.
"$WORK/isebatch" -workers 1 -checkpoint "$WORK/ck.jsonl" \
	-csv "$WORK/resumed.csv" "$WORK/corpus" >/dev/null 2>"$WORK/resume.log" ||
	fail "resumed batch run failed"
strip_ms "$WORK/full.csv" >"$WORK/full.stripped"
strip_ms "$WORK/resumed.csv" >"$WORK/resumed.stripped"
cmp -s "$WORK/full.stripped" "$WORK/resumed.stripped" || {
	diff "$WORK/full.stripped" "$WORK/resumed.stripped" >&2 || true
	fail "resumed report differs from the uninterrupted run"
}
echo "chaos_smoke: resumed batch report matches the uninterrupted run"

# --- 4. drain: SIGTERM flips healthz before the listener closes ------
"$WORK/ised" -addr 127.0.0.1:0 -addr-file "$WORK/addr4" \
	-drain-wait 2s -timeout 10s 2>"$WORK/ised4.log" &
DRAINPID=$!
PIDS="$PIDS $DRAINPID"
BASE4="http://$(wait_addr "$WORK/addr4")"
curl -sf "$BASE4/v1/healthz" | grep -q '"status": "ok"' || fail "pre-drain healthz not ok"

kill -TERM "$DRAINPID"
DRAINING=0
i=0
while [ "$i" -le 30 ]; do
	CODE="$(curl -s -o "$WORK/drain.json" -w '%{http_code}' "$BASE4/v1/healthz" || true)"
	if [ "$CODE" = "503" ] && grep -q '"draining": true' "$WORK/drain.json"; then
		DRAINING=1
		break
	fi
	i=$((i + 1))
	sleep 0.05
done
[ "$DRAINING" -eq 1 ] || fail "healthz never reported 503 + draining after SIGTERM"
wait "$DRAINPID" 2>/dev/null || true
echo "chaos_smoke: drain sequence confirmed (503 + draining before exit)"

echo "chaos_smoke: OK"
