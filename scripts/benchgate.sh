#!/bin/sh
# Benchmark regression gate for pull requests, in two parts.
#
# Part 1 (relative): runs the two headline hot-path benchmarks
# (BenchmarkT1LongWindowN40, BenchmarkT8Scaling) on the working tree
# and on a base ref checked out into a throwaway git worktree, then
# fails if any sub-benchmark's mean ns/op — or, where both sides
# report it, mean allocs/op — regressed by more than BENCHGATE_PCT
# percent (default 10).
#
# Part 2 (absolute): runs the service hot-path benchmarks
# (BenchmarkServiceSolve, BenchmarkServiceCacheHit) on the working
# tree only and fails if allocs/op exceeds a fixed ceiling. The
# allocation-free hot path is pinned in absolute terms because a
# relative gate would let the ceiling ratchet upward through a series
# of sub-threshold regressions.
#
# benchstat, when installed, prints its statistical report for the
# humans reading the log; the pass/fail decision itself is a pure-awk
# mean comparison so the gate needs nothing beyond the Go toolchain.
#
# Usage: ./scripts/benchgate.sh [base-ref]   (default origin/main)
# Env:   BENCHGATE_BENCHTIME (default 3x), BENCHGATE_COUNT (default 3),
#        BENCHGATE_PCT (default 10),
#        BENCHGATE_SERVICE_BENCHTIME (default 2000x),
#        BENCHGATE_SOLVE_ALLOCS (default 120),
#        BENCHGATE_CACHE_HIT_ALLOCS (default 40)
set -eu
cd "$(dirname "$0")/.."

BASE_REF="${1:-origin/main}"
BENCH='BenchmarkT1LongWindowN40|BenchmarkT8Scaling'
BENCHTIME="${BENCHGATE_BENCHTIME:-3x}"
COUNT="${BENCHGATE_COUNT:-3}"
PCT="${BENCHGATE_PCT:-10}"

if ! git rev-parse --verify --quiet "$BASE_REF^{commit}" >/dev/null; then
	echo "benchgate: base ref $BASE_REF does not resolve to a commit" >&2
	exit 1
fi

HEAD_OUT="$(mktemp)"
BASE_OUT="$(mktemp)"
SVC_OUT="$(mktemp)"
WT_PARENT="$(mktemp -d)"
WT="$WT_PARENT/base"
cleanup() {
	rm -f "$HEAD_OUT" "$BASE_OUT" "$SVC_OUT"
	git worktree remove --force "$WT" 2>/dev/null || true
	rm -rf "$WT_PARENT"
}
trap cleanup EXIT

# No pipe into tee: a pipeline would mask go test's exit status under
# plain sh (same rationale as bench.sh).
echo "benchgate: benchmarking head ($(git rev-parse --short HEAD))"
go test -run XXX -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" \
	. >"$HEAD_OUT" 2>&1 || {
	cat "$HEAD_OUT"
	echo "benchgate: head benchmark run failed" >&2
	exit 1
}
cat "$HEAD_OUT"

echo "benchgate: benchmarking base ($(git rev-parse --short "$BASE_REF"))"
git worktree add --quiet --detach "$WT" "$BASE_REF"
(cd "$WT" && go test -run XXX -bench "$BENCH" -benchtime "$BENCHTIME" \
	-count "$COUNT" .) >"$BASE_OUT" 2>&1 || {
	cat "$BASE_OUT"
	echo "benchgate: base benchmark run failed" >&2
	exit 1
}
cat "$BASE_OUT"

REL_FAIL=0
SVC_FAIL=0

if command -v benchstat >/dev/null 2>&1; then
	echo "benchgate: benchstat report (informational)"
	benchstat "$BASE_OUT" "$HEAD_OUT" || true
fi

# Mean ns/op and allocs/op per sub-benchmark (CPU-count suffix
# stripped), base vs head; sub-benchmarks or units that exist on only
# one side are reported but never gate — a PR adding or renaming a
# benchmark (or turning on ReportAllocs) must not fail here.
awk -v pct="$PCT" '
FNR == NR && /^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") { bsum[name] += $(i - 1); bn[name]++ }
		if ($i == "allocs/op") { basum[name] += $(i - 1); ban[name]++ }
	}
	next
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") { hsum[name] += $(i - 1); hn[name]++ }
		if ($i == "allocs/op") { hasum[name] += $(i - 1); han[name]++ }
	}
}
END {
	fail = 0
	checked = 0
	for (name in hn) {
		if (!(name in bn)) {
			printf "benchgate: %s: not in base, skipped\n", name
			continue
		}
		base = bsum[name] / bn[name]
		head = hsum[name] / hn[name]
		delta = (head - base) / base * 100
		checked++
		status = "ok"
		if (delta > pct) { status = "REGRESSION"; fail = 1 }
		printf "benchgate: %-55s base %12.0f ns/op      head %12.0f ns/op      %+8.2f%%  %s\n", \
			name, base, head, delta, status
		if ((name in ban) && (name in han) && basum[name] > 0) {
			abase = basum[name] / ban[name]
			ahead = hasum[name] / han[name]
			adelta = (ahead - abase) / abase * 100
			status = "ok"
			if (adelta > pct) { status = "REGRESSION"; fail = 1 }
			printf "benchgate: %-55s base %12.0f allocs/op  head %12.0f allocs/op  %+8.2f%%  %s\n", \
				name, abase, ahead, adelta, status
		}
	}
	for (name in bn) {
		if (!(name in hn)) printf "benchgate: %s: missing from head, skipped\n", name
	}
	if (checked == 0) {
		print "benchgate: no comparable benchmarks between base and head" > "/dev/stderr"
		exit 1
	}
	if (fail) {
		printf "benchgate: FAIL — regression above %s%% threshold\n", pct > "/dev/stderr"
		exit 1
	}
	printf "benchgate: pass (%d sub-benchmarks within %s%%)\n", checked, pct
}' "$BASE_OUT" "$HEAD_OUT" || REL_FAIL=1

# --- absolute allocation ceilings on the service hot path -----------
# BenchmarkServiceCacheHit is the allocation-free hot path's floor
# (request decode + canonicalize + LRU hit + response encode);
# BenchmarkServiceSolve mixes fresh solves into the rotation. Both are
# head-only: the ceiling is the contract, not the previous commit.
SERVICE_BENCH='BenchmarkServiceSolve|BenchmarkServiceCacheHit'
SERVICE_BENCHTIME="${BENCHGATE_SERVICE_BENCHTIME:-2000x}"
SOLVE_ALLOCS_MAX="${BENCHGATE_SOLVE_ALLOCS:-120}"
HIT_ALLOCS_MAX="${BENCHGATE_CACHE_HIT_ALLOCS:-40}"

echo "benchgate: service allocation ceilings (solve <= $SOLVE_ALLOCS_MAX, cache hit <= $HIT_ALLOCS_MAX allocs/op)"
go test -run XXX -bench "$SERVICE_BENCH" -benchtime "$SERVICE_BENCHTIME" \
	-count "$COUNT" ./internal/server >"$SVC_OUT" 2>&1 || {
	cat "$SVC_OUT"
	echo "benchgate: service benchmark run failed" >&2
	exit 1
}
cat "$SVC_OUT"

awk -v solve_max="$SOLVE_ALLOCS_MAX" -v hit_max="$HIT_ALLOCS_MAX" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "allocs/op") { sum[name] += $(i - 1); n[name]++ }
	}
}
END {
	fail = 0
	fail += gate("BenchmarkServiceSolve", solve_max)
	fail += gate("BenchmarkServiceCacheHit", hit_max)
	if (fail) {
		print "benchgate: FAIL — service allocation ceiling exceeded" > "/dev/stderr"
		exit 1
	}
	print "benchgate: service allocation ceilings pass"
}
function gate(name, max,    mean, status) {
	if (!(name in n)) {
		printf "benchgate: %s: no allocs/op reported\n", name > "/dev/stderr"
		return 1
	}
	mean = sum[name] / n[name]
	status = "ok"
	if (mean > max) status = "OVER CEILING"
	printf "benchgate: %-55s %8.0f allocs/op  (ceiling %s)  %s\n", name, mean, max, status
	return status == "ok" ? 0 : 1
}' "$SVC_OUT" || SVC_FAIL=1

# Both gates always run, so one failing cannot hide the other's report.
if [ "$REL_FAIL" -ne 0 ] || [ "$SVC_FAIL" -ne 0 ]; then
	exit 1
fi
