#!/bin/sh
# Benchmark regression gate for pull requests: runs the two headline
# hot-path benchmarks (BenchmarkT1LongWindowN40, BenchmarkT8Scaling)
# on the working tree and on a base ref checked out into a throwaway
# git worktree, then fails if any sub-benchmark's mean ns/op regressed
# by more than BENCHGATE_PCT percent (default 10).
#
# benchstat, when installed, prints its statistical report for the
# humans reading the log; the pass/fail decision itself is a pure-awk
# mean comparison so the gate needs nothing beyond the Go toolchain.
#
# Usage: ./scripts/benchgate.sh [base-ref]   (default origin/main)
# Env:   BENCHGATE_BENCHTIME (default 3x), BENCHGATE_COUNT (default 3),
#        BENCHGATE_PCT (default 10)
set -eu
cd "$(dirname "$0")/.."

BASE_REF="${1:-origin/main}"
BENCH='BenchmarkT1LongWindowN40|BenchmarkT8Scaling'
BENCHTIME="${BENCHGATE_BENCHTIME:-3x}"
COUNT="${BENCHGATE_COUNT:-3}"
PCT="${BENCHGATE_PCT:-10}"

if ! git rev-parse --verify --quiet "$BASE_REF^{commit}" >/dev/null; then
	echo "benchgate: base ref $BASE_REF does not resolve to a commit" >&2
	exit 1
fi

HEAD_OUT="$(mktemp)"
BASE_OUT="$(mktemp)"
WT_PARENT="$(mktemp -d)"
WT="$WT_PARENT/base"
cleanup() {
	rm -f "$HEAD_OUT" "$BASE_OUT"
	git worktree remove --force "$WT" 2>/dev/null || true
	rm -rf "$WT_PARENT"
}
trap cleanup EXIT

# No pipe into tee: a pipeline would mask go test's exit status under
# plain sh (same rationale as bench.sh).
echo "benchgate: benchmarking head ($(git rev-parse --short HEAD))"
go test -run XXX -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" \
	. >"$HEAD_OUT" 2>&1 || {
	cat "$HEAD_OUT"
	echo "benchgate: head benchmark run failed" >&2
	exit 1
}
cat "$HEAD_OUT"

echo "benchgate: benchmarking base ($(git rev-parse --short "$BASE_REF"))"
git worktree add --quiet --detach "$WT" "$BASE_REF"
(cd "$WT" && go test -run XXX -bench "$BENCH" -benchtime "$BENCHTIME" \
	-count "$COUNT" .) >"$BASE_OUT" 2>&1 || {
	cat "$BASE_OUT"
	echo "benchgate: base benchmark run failed" >&2
	exit 1
}
cat "$BASE_OUT"

if command -v benchstat >/dev/null 2>&1; then
	echo "benchgate: benchstat report (informational)"
	benchstat "$BASE_OUT" "$HEAD_OUT" || true
fi

# Mean ns/op per sub-benchmark (CPU-count suffix stripped), base vs
# head; sub-benchmarks that exist on only one side are reported but
# never gate — a PR adding or renaming a benchmark must not fail here.
awk -v pct="$PCT" '
FNR == NR && /^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") { bsum[name] += $(i - 1); bn[name]++ }
	}
	next
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") { hsum[name] += $(i - 1); hn[name]++ }
	}
}
END {
	fail = 0
	checked = 0
	for (name in hn) {
		if (!(name in bn)) {
			printf "benchgate: %s: not in base, skipped\n", name
			continue
		}
		base = bsum[name] / bn[name]
		head = hsum[name] / hn[name]
		delta = (head - base) / base * 100
		checked++
		status = "ok"
		if (delta > pct) { status = "REGRESSION"; fail = 1 }
		printf "benchgate: %-55s base %12.0f ns/op  head %12.0f ns/op  %+8.2f%%  %s\n", \
			name, base, head, delta, status
	}
	for (name in bn) {
		if (!(name in hn)) printf "benchgate: %s: missing from head, skipped\n", name
	}
	if (checked == 0) {
		print "benchgate: no comparable benchmarks between base and head" > "/dev/stderr"
		exit 1
	}
	if (fail) {
		printf "benchgate: FAIL — regression above %s%% threshold\n", pct > "/dev/stderr"
		exit 1
	}
	printf "benchgate: pass (%d sub-benchmarks within %s%%)\n", checked, pct
}' "$BASE_OUT" "$HEAD_OUT"
