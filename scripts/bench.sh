#!/bin/sh
# Runs the hot-path benchmarks and records their headline numbers in
# BENCH_lp.json at the repo root. The x-speedup metrics are quotients
# (old path time / new path time) reported by the benchmarks
# themselves; the acceptance floor for T1LongWindowN40/HotPath is 2.0.
#
# Usage: ./scripts/bench.sh [benchtime]   (default 5x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT=BENCH_lp.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# No pipe into tee: a pipeline would mask go test's exit status under
# plain sh and a failed run would clobber the previous numbers.
go test -run XXX -bench 'BenchmarkT1LongWindowN40|BenchmarkT8Scaling' \
	-benchtime "$BENCHTIME" . >"$RAW" 2>&1 || {
	cat "$RAW"
	echo "bench run failed; $OUT left untouched" >&2
	exit 1
}
cat "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v go="$(go env GOVERSION)" '
function val(i) { return $(i - 1) }
/^Benchmark/ {
	split($1, parts, "/")
	name = parts[2]
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op" && val(i) + 0 > 0) ns[name] = val(i)
		if ($i == "x-speedup") speedup[name] = val(i)
	}
}
END {
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", go
	printf "  \"t1_long_window_n40\": {\n"
	printf "    \"seed_ns\": %s,\n", ns["Seed"] ? ns["Seed"] : "null"
	printf "    \"end_to_end_speedup\": %s,\n", speedup["HotPath"] ? speedup["HotPath"] : "null"
	printf "    \"required_min\": 2.0\n"
	printf "  },\n"
	printf "  \"t8_scaling\": {\n"
	printf "    \"bounded_vs_pair_rows\": %s,\n", speedup["BoundedVsPairRows"] ? speedup["BoundedVsPairRows"] : "null"
	printf "    \"warm_vs_cold\": %s,\n", speedup["WarmVsCold"] ? speedup["WarmVsCold"] : "null"
	printf "    \"decomposed_vs_monolithic\": %s\n", speedup["DecomposedVsMonolithic"] ? speedup["DecomposedVsMonolithic"] : "null"
	printf "  }\n"
	printf "}\n"
}' "$RAW" >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
