#!/bin/sh
# Runs the hot-path benchmarks and records their headline numbers in
# BENCH_lp.json at the repo root. The x-speedup metrics are quotients
# (old path time / new path time) reported by the benchmarks
# themselves; the acceptance floor for T1LongWindowN40/HotPath is 2.0.
# A telemetry block from one instrumented warm parallel solve (isegen
# clustered -> isesolve -warm -par 4 -metrics-out) rides along so the
# report also captures what the solver *did*: warm-start hit rate,
# cold fallbacks, pivots, pool occupancy. A second report,
# BENCH_service.json, records the ised daemon's end-to-end request
# numbers (fresh-solve mix and pure cache hits) from the
# internal/server benchmarks.
#
# Usage: ./scripts/bench.sh [benchtime]   (default 5x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT=BENCH_lp.json
RAW="$(mktemp)"
MET="$(mktemp)"
INST="$(mktemp)"
trap 'rm -f "$RAW" "$MET" "$INST"' EXIT

# No pipe into tee: a pipeline would mask go test's exit status under
# plain sh and a failed run would clobber the previous numbers.
go test -run XXX -bench 'BenchmarkT1LongWindowN40|BenchmarkT8Scaling' \
	-benchtime "$BENCHTIME" . >"$RAW" 2>&1 || {
	cat "$RAW"
	echo "bench run failed; $OUT left untouched" >&2
	exit 1
}
cat "$RAW"

# One instrumented end-to-end solve on a T1-shaped clustered instance;
# the metrics JSON is one scalar per line, so awk folds it in below.
go run ./cmd/isegen -family clustered -n 40 -m 4 -seed 140 >"$INST"
go run ./cmd/isesolve -warm -par 4 -metrics-out "$MET" "$INST" >/dev/null || {
	echo "instrumented solve failed; $OUT left untouched" >&2
	exit 1
}

# jnum guards every interpolated number: a missing benchmark or metric
# becomes JSON null instead of an empty field (the bare ternary used
# before also swallowed legitimate zeros).
awk -v stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go env GOVERSION)" '
function jnum(v) { return v == "" ? "null" : v }
function val(i) { return $(i - 1) }
FNR == NR && /^Benchmark/ {
	split($1, parts, "/")
	name = parts[2]
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op" && val(i) + 0 > 0) ns[name] = val(i)
		if ($i == "x-speedup") speedup[name] = val(i)
	}
	next
}
FNR != NR && /^  "[a-z_]+": [0-9.eE+-]+,?$/ {
	key = $1
	gsub(/[":]/, "", key)
	v = $2
	gsub(/,/, "", v)
	metric[key] = v
}
END {
	hits = metric["lp_warm_start_hits_total"] + 0
	misses = metric["lp_warm_start_misses_total"] + 0
	rate = (hits + misses > 0) ? sprintf("%.3f", hits / (hits + misses)) : ""
	printf "{\n"
	printf "  \"date\": \"%s\",\n", stamp
	printf "  \"go\": \"%s\",\n", gover
	printf "  \"t1_long_window_n40\": {\n"
	printf "    \"seed_ns\": %s,\n", jnum(ns["Seed"])
	printf "    \"end_to_end_speedup\": %s,\n", jnum(speedup["HotPath"])
	printf "    \"required_min\": 2.0\n"
	printf "  },\n"
	printf "  \"t8_scaling\": {\n"
	printf "    \"bounded_vs_pair_rows\": %s,\n", jnum(speedup["BoundedVsPairRows"])
	printf "    \"warm_vs_cold\": %s,\n", jnum(speedup["WarmVsCold"])
	printf "    \"decomposed_vs_monolithic\": %s\n", jnum(speedup["DecomposedVsMonolithic"])
	printf "  },\n"
	printf "  \"telemetry\": {\n"
	printf "    \"lp_pivots\": %s,\n", jnum(metric["lp_pivots_total"])
	printf "    \"lp_warm_start_hits\": %s,\n", jnum(metric["lp_warm_start_hits_total"])
	printf "    \"lp_warm_start_misses\": %s,\n", jnum(metric["lp_warm_start_misses_total"])
	printf "    \"lp_warm_hit_rate\": %s,\n", jnum(rate)
	printf "    \"lp_cold_fallbacks\": %s,\n", jnum(metric["lp_cold_fallback_total"])
	printf "    \"lp_lu_factorize_total\": %s,\n", jnum(metric["lp_lu_factorize_total"])
	printf "    \"lp_lu_refactor_total\": %s,\n", jnum(metric["lp_lu_refactor_total"])
	printf "    \"lp_lu_eta_len_max\": %s,\n", jnum(metric["lp_lu_eta_len_max"])
	printf "    \"lp_lu_fill_ratio\": %s,\n", jnum(metric["lp_lu_fill_ratio"])
	printf "    \"lp_lu_dense_fallbacks\": %s,\n", jnum(metric["lp_lu_dense_fallback_total"])
	printf "    \"tise_resolves\": %s,\n", jnum(metric["tise_resolves_total"])
	printf "    \"decomp_components\": %s,\n", jnum(metric["decomp_components"])
	printf "    \"decomp_pool_busy_max\": %s\n", jnum(metric["decomp_pool_busy_max"])
	printf "  }\n"
	printf "}\n"
}' "$RAW" "$MET" >"$OUT"

# Smoke-test the report before declaring success: the old awk could
# emit syntactically invalid JSON when a field came up empty.
go run ./cmd/isebench -check "$OUT" >/dev/null

echo "wrote $OUT:"
cat "$OUT"

# --- service throughput ---------------------------------------------
# End-to-end ised daemon numbers (request decode + canonicalize +
# cache + admission + solve + response encode) into BENCH_service.json:
# the mixed fresh/cached solve path and the pure cache-hit floor. Same
# guard rails as above — a failed run leaves the previous report
# untouched. The iteration count is fixed and much higher than the LP
# benchmarks' (default 2000x, matching scripts/benchgate.sh): the
# alloc numbers only mean anything once the pools are warm and the
# rotation's fresh solves have amortized away.
SOUT=BENCH_service.json
SRAW="$(mktemp)"
SERVICE_BENCHTIME="${SERVICE_BENCHTIME:-2000x}"
trap 'rm -f "$RAW" "$MET" "$INST" "$SRAW"' EXIT

go test -run XXX -bench 'BenchmarkServiceSolve|BenchmarkServiceCacheHit' \
	-benchtime "$SERVICE_BENCHTIME" ./internal/server >"$SRAW" 2>&1 || {
	cat "$SRAW"
	echo "service bench run failed; $SOUT left untouched" >&2
	exit 1
}
cat "$SRAW"

awk -v stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go env GOVERSION)" '
function jnum(v) { return v == "" ? "null" : v }
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op" && $(i - 1) + 0 > 0) ns[name] = $(i - 1)
		if ($i == "B/op") bytes[name] = $(i - 1)
		if ($i == "allocs/op") allocs[name] = $(i - 1)
	}
}
END {
	printf "{\n"
	printf "  \"date\": \"%s\",\n", stamp
	printf "  \"go\": \"%s\",\n", gover
	printf "  \"service_solve\": {\n"
	printf "    \"ns_per_request\": %s,\n", jnum(ns["ServiceSolve"])
	printf "    \"bytes_per_request\": %s,\n", jnum(bytes["ServiceSolve"])
	printf "    \"allocs_per_request\": %s,\n", jnum(allocs["ServiceSolve"])
	printf "    \"allocs_ceiling\": 120\n"
	printf "  },\n"
	printf "  \"service_cache_hit\": {\n"
	printf "    \"ns_per_request\": %s,\n", jnum(ns["ServiceCacheHit"])
	printf "    \"bytes_per_request\": %s,\n", jnum(bytes["ServiceCacheHit"])
	printf "    \"allocs_per_request\": %s,\n", jnum(allocs["ServiceCacheHit"])
	printf "    \"allocs_ceiling\": 40\n"
	printf "  }\n"
	printf "}\n"
}' "$SRAW" >"$SOUT"

go run ./cmd/isebench -check "$SOUT" >/dev/null

echo "wrote $SOUT:"
cat "$SOUT"
