package calib_test

// Metamorphic tests: time scaling and time translation are similarity
// transforms of the ISE problem — schedules correspond one-to-one —
// so every solver's calibration count must be invariant under them.
// These catch a whole class of bugs (hidden absolute-time assumptions,
// off-by-one grid anchoring) that unit tests on fixed instances miss.

import (
	"math/rand"
	"testing"

	"calib"
	"calib/internal/ise"
	"calib/internal/workload"
)

type solverFn struct {
	name string
	run  func(*calib.Instance) (int, error)
}

func solvers() []solverFn {
	return []solverFn{
		{"pipeline", func(in *calib.Instance) (int, error) {
			sol, err := calib.Solve(in, nil)
			if err != nil {
				return 0, err
			}
			return sol.Calibrations, nil
		}},
		{"lazy", func(in *calib.Instance) (int, error) {
			s, err := calib.SolveLazy(in, 0)
			if err != nil {
				return 0, err
			}
			return s.NumCalibrations(), nil
		}},
		{"online", func(in *calib.Instance) (int, error) {
			s, err := calib.SolveOnline(in)
			if err != nil {
				return 0, err
			}
			return s.NumCalibrations(), nil
		}},
		{"exact", func(in *calib.Instance) (int, error) {
			if in.N() > 7 {
				return -1, nil // skip marker
			}
			_, cals, err := calib.SolveExact(in, 0)
			return cals, err
		}},
		{"lower-bound", func(in *calib.Instance) (int, error) {
			return calib.LowerBound(in), nil
		}},
	}
}

func TestScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 8; trial++ {
		inst, _ := workload.Mixed(rng, 10, 1, 10, 0.5)
		scaled := inst.Scale(3)
		for _, sv := range solvers() {
			a, err := sv.run(inst)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, sv.name, err)
			}
			b, err := sv.run(scaled)
			if err != nil {
				t.Fatalf("trial %d %s (scaled): %v", trial, sv.name, err)
			}
			if a != b {
				t.Errorf("trial %d: %s not scale-invariant: %d vs %d", trial, sv.name, a, b)
			}
		}
	}
}

func TestTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	for trial := 0; trial < 8; trial++ {
		inst, _ := workload.Mixed(rng, 10, 1, 10, 0.5)
		for _, delta := range []ise.Time{70, 1000} {
			shifted := inst.Shift(delta)
			for _, sv := range solvers() {
				a, err := sv.run(inst)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, sv.name, err)
				}
				b, err := sv.run(shifted)
				if err != nil {
					t.Fatalf("trial %d %s (shift %d): %v", trial, sv.name, delta, err)
				}
				if a != b {
					t.Errorf("trial %d: %s not translation-invariant under +%d: %d vs %d",
						trial, sv.name, delta, a, b)
				}
			}
		}
	}
}
