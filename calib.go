// Package calib is a Go implementation of calibration-minimizing
// scheduling: the Integrated Stockpile Evaluation (ISE) problem of
// Bender et al. (SPAA 2013) for general processing times, as solved by
// Fineman & Sheridan, "Scheduling Non-Unit Jobs to Minimize
// Calibrations" (SPAA 2015).
//
// # The problem
//
// n jobs, each with a release time, a deadline, and a processing time
// p_j <= T, must run nonpreemptively on identical machines. A machine
// is usable only during a calibrated interval [t, t+T); calibrations
// are instantaneous but expensive, and the goal is to finish every job
// by its deadline using as few calibrations as possible.
//
// # The algorithm
//
// Solve partitions jobs by window length (Definition 1 of the paper):
// long-window jobs (d_j - r_j >= 2T) go through an LP relaxation of
// the trimmed-ISE problem, greedy calibration rounding, and EDF
// assignment (Section 3, Theorem 12); short-window jobs go through
// time partitioning and a machine-minimization black box (Section 4,
// Theorem 20). With an alpha-approximate MM box the result is an
// O(alpha)-approximation on O(alpha) times the machines (Theorem 1).
//
// # Quick start
//
//	inst := calib.NewInstance(10, 1) // T=10, one machine
//	inst.AddJob(0, 40, 5)
//	inst.AddJob(30, 40, 8)
//	sol, err := calib.Solve(inst, nil)
//	if err != nil { ... }
//	fmt.Println(sol.Calibrations, sol.Schedule.Calibrations)
//
// Schedules returned by every solver in this module are verified
// feasible by calib.Validate, which checks the four ISE feasibility
// properties exactly (integer arithmetic throughout).
package calib

import (
	"context"
	"fmt"
	"time"

	"calib/internal/bounds"
	"calib/internal/core"
	"calib/internal/exact"
	"calib/internal/fault"
	"calib/internal/heur"
	"calib/internal/improve"
	"calib/internal/ise"
	"calib/internal/mm"
	"calib/internal/obs"
	"calib/internal/online"
	"calib/internal/robust"
	"calib/internal/tise"
	"calib/internal/unitise"
)

// Time is the integer tick type for all schedule quantities.
type Time = ise.Time

// Job is a single job: window [Release, Deadline), processing time
// Processing <= T.
type Job = ise.Job

// Instance is an ISE problem instance; create with NewInstance and
// populate with AddJob.
type Instance = ise.Instance

// Schedule is a solution: calibrations plus one placement per job.
type Schedule = ise.Schedule

// Calibration and Placement are the schedule components.
type (
	Calibration = ise.Calibration
	Placement   = ise.Placement
)

// NewInstance returns an empty instance with calibration length T and
// m machines (the count OPT is compared on; the solver may use more —
// machine augmentation — per the paper's guarantees).
func NewInstance(T Time, m int) *Instance { return ise.NewInstance(T, m) }

// MMBox selects the machine-minimization black box used for
// short-window jobs (Theorem 1 is generic over this choice).
type MMBox int

// Available MM black boxes.
const (
	// MMGreedy is earliest-deadline list scheduling with increasing
	// machine count: fast, always succeeds, empirically near-optimal.
	MMGreedy MMBox = iota
	// MMExact is complete branch-and-bound: alpha = 1, exponential
	// time; use for small instances.
	MMExact
	// MMLPRound is a time-indexed LP with randomized rounding, in the
	// spirit of the Raghavan–Thompson approximation the paper cites.
	MMLPRound
	// MMLPSearch binary-searches the smallest machine count whose
	// time-indexed feasibility LP admits a solution, warm-starting each
	// probe from the previous basis, then rounds like MMLPRound with a
	// greedy fallback.
	MMLPSearch
)

func (b MMBox) String() string {
	switch b {
	case MMGreedy:
		return "greedy"
	case MMExact:
		return "exact"
	case MMLPRound:
		return "lp-round"
	case MMLPSearch:
		return "lp-search"
	default:
		return fmt.Sprintf("MMBox(%d)", int(b))
	}
}

func (b MMBox) solver() mm.Solver {
	switch b {
	case MMExact:
		return mm.Exact{}
	case MMLPRound:
		return mm.LPRound{}
	case MMLPSearch:
		return mm.LPSearch{}
	default:
		return mm.Greedy{}
	}
}

// Options configures Solve. The zero value (or nil) selects the
// paper-faithful defaults: greedy MM box, float64 LP engine, no
// trimming.
type Options struct {
	// MMBox selects the short-window black box.
	MMBox MMBox
	// ExactLP switches the long-window LP to exact rational
	// arithmetic (slower; bit-exact objective).
	ExactLP bool
	// TrimIdleCalibrations drops short-window calibrations that host
	// no job — a feasibility-preserving optimization beyond the paper.
	TrimIdleCalibrations bool
	// CompactMachines recolors the final schedule onto the minimum
	// machines its calibrations allow (optimal interval coloring).
	// The algorithms allocate their worst-case machine budget (18m
	// for the long-window pipeline); compaction recovers the unused
	// part without changing any times.
	CompactMachines bool
	// LocalSearch post-processes the schedule with calibration-
	// elimination local search (internal/improve): never worse,
	// feasibility re-verified, typically strips most of the worst-case
	// padding. Beyond the paper; the approximation guarantee is
	// unaffected (the result only gets better).
	LocalSearch bool
	// WarmStart switches the long-window LP to the hot path: the
	// bounded-variable revised simplex with lazy pair-cut separation
	// and basis reuse across re-solves (see internal/lp and
	// internal/tise). Same optimum as the default dense engine — the
	// test suite cross-checks the objectives to 1e-6 — but much less
	// work per solve on wide-window instances. Ignored when ExactLP is
	// set (rational arithmetic has no warm-start path).
	WarmStart bool
	// Parallelism > 0 decomposes the instance at time gaps of at least
	// T (no calibration can span such a gap, so the optimum splits
	// exactly; see internal/decomp) and solves the components
	// concurrently on up to Parallelism workers. The merged schedule is
	// deterministic — independent of worker count and interleaving. 0
	// keeps the monolithic single-threaded solve.
	Parallelism int
	// Trace, when non-nil, records a hierarchical span tree of the
	// solve (partition, LP, rounding, EDF, MM, per-component spans);
	// render it with Trace.WriteText or Trace.WriteJSON after Solve
	// returns. See docs/OBSERVABILITY.md for the span taxonomy.
	Trace *Trace
	// Metrics, when non-nil, accumulates the solver counter series
	// (LP pivots, warm-start hits, cut rounds, pool occupancy, ...);
	// export with Metrics.WriteJSON or Metrics.WritePrometheus. Both
	// default to nil — telemetry off, at zero allocation cost.
	Metrics *Metrics
	// Context, when non-nil, cancels the solve: Solve returns
	// ErrCanceled (hard cancel) or ErrDeadline (context deadline)
	// shortly after the context ends, from every phase of the pipeline.
	// SolveRobust instead degrades to cheaper solvers on deadline
	// expiry and aborts only on hard cancellation.
	Context context.Context
	// Timeout, when positive, bounds the solve's wall clock (layered on
	// Context, or on its own when Context is nil).
	Timeout time.Duration
	// Budget, when positive, caps the solve's total work in abstract
	// units — one simplex pivot or one branch-and-bound node is one
	// unit — giving a deterministic limit where wall clock would be
	// machine-dependent. Exhaustion behaves like a deadline: Solve
	// returns ErrBudget, SolveRobust degrades.
	Budget int64
	// Fault, when non-nil, arms deterministic fault injection at the
	// solver-phase points (build with fault.New or fault.ParseSpec; see
	// internal/fault). Injected panics propagate from Solve but are
	// contained — and degraded around — by SolveRobust's ladder. nil
	// (the default) disables injection at zero cost.
	Fault *FaultInjector
}

// FaultInjector is the deterministic fault injector of internal/fault,
// re-exported so in-module callers (the ised daemon, the chaos suite)
// can thread one through Options without importing the internal
// package at every site.
type FaultInjector = fault.Injector

// Taxonomy sentinels for limited solves; test with errors.Is. The
// returned errors additionally carry the failing phase and, on
// decomposed solves, the component index (see internal/robust).
var (
	// ErrCanceled: the caller's Context was canceled.
	ErrCanceled = robust.ErrCanceled
	// ErrDeadline: Timeout (or the Context's deadline) expired. A
	// deadline error also matches ErrCanceled (it is a cancellation);
	// test ErrDeadline first to tell them apart.
	ErrDeadline = context.DeadlineExceeded
	// ErrBudget: the work Budget ran out.
	ErrBudget = robust.ErrBudgetExhausted
)

// control materializes the Options' limit fields into a
// robust.Control. The returned cancel must be called when the solve
// finishes; both are no-ops when no limit is configured.
func (o *Options) control() (*robust.Control, context.CancelFunc) {
	if o.Context == nil && o.Timeout <= 0 && o.Budget <= 0 {
		return nil, func() {}
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if o.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
	}
	met := o.Metrics
	if met == nil {
		met = obs.Default()
	}
	return robust.NewControl(ctx, o.Budget, met), cancel
}

// Trace is a hierarchical span recorder for one solve; create with
// NewTrace and pass via Options.Trace.
type Trace = obs.Trace

// Metrics is a registry of solver counters, gauges and histograms;
// create with NewMetrics and pass via Options.Metrics.
type Metrics = obs.Registry

// NewTrace returns an empty trace whose root span is named name
// ("solve" is conventional). Call Finish before rendering.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Solution is the result of Solve.
type Solution struct {
	// Schedule is the feasible schedule found.
	Schedule *Schedule
	// Calibrations is the objective value len(Schedule.Calibrations).
	Calibrations int
	// MachinesUsed counts distinct machines with work or calibrations.
	MachinesUsed int
	// LongJobs and ShortJobs are the Definition 1 partition sizes.
	LongJobs, ShortJobs int
	// LowerBound is a combinatorial lower bound on OPT's calibrations
	// (work, cluster, and Lemma 18 interval bounds).
	LowerBound int
	// LPObjective is the long-window LP optimum (0 if no long jobs),
	// summed across time components when Parallelism decomposes the
	// instance; OPT on the long sub-instance is at least LPObjective/3.
	LPObjective float64
}

// Solve runs the full Fineman–Sheridan algorithm and returns a
// feasible schedule. It returns an error when the long-window LP
// proves the long jobs infeasible on 3m machines (which implies the
// instance is infeasible on m machines), or when the instance is
// malformed.
func Solve(inst *Instance, opts *Options) (*Solution, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	engine := tise.Float64
	strategy := tise.Direct
	switch {
	case o.ExactLP:
		engine = tise.Rational
	case o.WarmStart:
		engine = tise.Revised
		strategy = tise.Bounded
	}
	ctl, cancel := o.control()
	defer cancel()
	res, err := core.Solve(inst, core.Options{
		MM:          o.MMBox.solver(),
		Engine:      engine,
		Strategy:    strategy,
		TrimIdle:    o.TrimIdleCalibrations,
		Parallelism: o.Parallelism,
		Trace:       o.Trace,
		Metrics:     o.Metrics,
		Control:     ctl,
		Fault:       o.Fault,
	})
	if err != nil {
		return nil, err
	}
	if o.LocalSearch {
		improved, ierr := improve.Run(inst, res.Schedule)
		if ierr != nil {
			return nil, ierr
		}
		res.Schedule = improved.Schedule
	}
	if o.CompactMachines {
		compacted, cerr := ise.Compact(inst, res.Schedule)
		if cerr != nil {
			return nil, cerr
		}
		res.Schedule = compacted
	}
	sol := &Solution{
		Schedule:     res.Schedule,
		Calibrations: res.Schedule.NumCalibrations(),
		MachinesUsed: res.Schedule.MachinesUsed(),
		LongJobs:     res.LongJobs,
		ShortJobs:    res.ShortJobs,
		LowerBound:   bounds.Calibrations(inst),
		LPObjective:  res.LPObjective,
	}
	return sol, nil
}

// ComponentReport describes how SolveRobust answered one time
// component: the rung that produced the schedule, the rungs that
// failed before it, and the component's bound certificates.
type ComponentReport = core.ComponentReport

// RobustSolution is the result of SolveRobust: a feasible schedule
// that is guaranteed to exist even under deadline or budget pressure,
// plus provenance saying how good it is and how it was obtained.
type RobustSolution struct {
	// Schedule is the feasible schedule found.
	Schedule *Schedule
	// Calibrations is the objective value (the certified upper bound).
	Calibrations int
	// MachinesUsed counts distinct machines with work or calibrations.
	// Degraded components may push this past inst.M: the ladder trades
	// machines, never feasibility.
	MachinesUsed int
	// Components is the number of independent time components solved.
	Components int
	// Degraded reports whether any component fell past its first rung;
	// DegradedComponents lists which (in component order).
	Degraded           bool
	DegradedComponents []int
	// Reports holds the per-component provenance, in component order.
	Reports []ComponentReport
	// Exact reports that every component was solved to proven
	// optimality, making Calibrations the true optimum.
	Exact bool
	// LowerBound is the combinatorial lower bound on OPT's
	// calibrations (as in Solution.LowerBound).
	LowerBound int
	// LadderLower sums the per-component certificates of the answering
	// rungs (exact optimum, or LP relaxation objective); components
	// answered by the heuristic rung contribute 0. It is a valid lower
	// bound on the optimal TISE calibration count under any
	// degradation.
	LadderLower float64
}

// RungSummary names the ladder rungs that answered, comma-joined and
// deduplicated in ladder order (e.g. "exact,lp"). The serving layer
// stamps it into each request's decision record.
func (r *RobustSolution) RungSummary() string {
	if r == nil {
		return ""
	}
	return (&core.RobustResult{Reports: r.Reports}).RungSummary()
}

// Falls flattens the failed rung attempts of every component into
// "rung:reason" tokens, in component order (empty when not degraded).
func (r *RobustSolution) Falls() []string {
	if r == nil {
		return nil
	}
	return (&core.RobustResult{Reports: r.Reports, Degraded: r.Degraded}).Falls()
}

// SolveRobust runs the pipeline with graceful degradation. The
// instance is decomposed into independent time components and each
// descends a ladder — exact branch-and-bound (small components only),
// the paper's LP pipeline, then the lazy heuristic — until a rung
// answers within its share of the remaining Timeout/Budget. The last
// rung runs unlimited, so SolveRobust returns a feasible schedule even
// when the deadline has already expired; only a hard Context
// cancellation (ErrCanceled) makes it give up. Every fallback is
// counted in the robust_fallback_total metric series.
func SolveRobust(inst *Instance, opts *Options) (*RobustSolution, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	engine := tise.Float64
	strategy := tise.Direct
	switch {
	case o.ExactLP:
		engine = tise.Rational
	case o.WarmStart:
		engine = tise.Revised
		strategy = tise.Bounded
	}
	ctl, cancel := o.control()
	defer cancel()
	res, err := core.SolveRobust(inst, core.RobustOptions{Options: core.Options{
		MM:          o.MMBox.solver(),
		Engine:      engine,
		Strategy:    strategy,
		TrimIdle:    o.TrimIdleCalibrations,
		Parallelism: o.Parallelism,
		Trace:       o.Trace,
		Metrics:     o.Metrics,
		Control:     ctl,
		Fault:       o.Fault,
	}})
	if err != nil {
		return nil, err
	}
	sched := res.Schedule
	if o.LocalSearch {
		improved, ierr := improve.Run(inst, sched)
		if ierr != nil {
			return nil, ierr
		}
		sched = improved.Schedule
	}
	if o.CompactMachines {
		compacted, cerr := ise.Compact(inst, sched)
		if cerr != nil {
			return nil, cerr
		}
		sched = compacted
	}
	sol := &RobustSolution{
		Schedule:     sched,
		Calibrations: sched.NumCalibrations(),
		MachinesUsed: sched.MachinesUsed(),
		Components:   res.Components,
		Degraded:     res.Degraded,
		Reports:      res.Reports,
		Exact:        res.Exact,
		LowerBound:   bounds.Calibrations(inst),
		LadderLower:  res.LowerBound,
	}
	for _, rep := range res.Reports {
		if len(rep.Attempts) > 0 {
			sol.DegradedComponents = append(sol.DegradedComponents, rep.Component)
		}
	}
	return sol, nil
}

// SpeedSolution is the result of SolveWithSpeed (Theorem 14).
type SpeedSolution struct {
	// Scaled is the instance the schedule is expressed in: every time
	// quantity of the input multiplied by 36 (the transformation needs
	// 2c | T with c = 18). It is equivalent to the input instance.
	Scaled *Instance
	// Schedule uses at most inst.M machines at Speed 36.
	Schedule *Schedule
	// Calibrations is the objective value.
	Calibrations int
}

// SolveWithSpeed solves a long-window-only instance with the paper's
// machines→speed transformation (Theorem 14): at most inst.M machines,
// each 36x faster, and at most 12 times the optimal number of
// calibrations. All jobs must have long windows (d_j - r_j >= 2T).
func SolveWithSpeed(inst *Instance, opts *Options) (*SpeedSolution, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	engine := tise.Float64
	if o.ExactLP {
		engine = tise.Rational
	}
	res, err := tise.SolveWithSpeed(inst, tise.Options{Engine: engine})
	if err != nil {
		return nil, err
	}
	return &SpeedSolution{
		Scaled:       res.Scaled,
		Schedule:     res.Schedule,
		Calibrations: res.Schedule.NumCalibrations(),
	}, nil
}

// Validate checks full ISE feasibility of s for inst: every job placed
// exactly once inside its window, entirely within a calibration on its
// machine, with no job or calibration overlaps. It returns nil for
// feasible schedules and a descriptive error otherwise.
func Validate(inst *Instance, s *Schedule) error { return ise.Validate(inst, s) }

// LowerBound returns the best available combinatorial lower bound on
// the optimal number of calibrations for inst.
func LowerBound(inst *Instance) int { return bounds.Calibrations(inst) }

// Compact recolors a feasible schedule onto the fewest machines its
// calibrations allow, preserving all times and the calibration count.
func Compact(inst *Instance, s *Schedule) (*Schedule, error) { return ise.Compact(inst, s) }

// Improve runs calibration-elimination local search on a feasible
// unit-speed schedule: jobs of lightly loaded calibrations are
// relocated into other calibrations' free space and emptied
// calibrations are dropped. The result is feasible and never has more
// calibrations than the input.
func Improve(inst *Instance, s *Schedule) (*Schedule, error) {
	res, err := improve.Run(inst, s)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// SolveExact finds a provably minimum-calibration schedule on inst.M
// machines by branch and bound. Exponential time: intended for small
// instances (n up to ~8). maxNodes = 0 uses a default cap; see
// internal/exact for semantics when the cap is hit.
func SolveExact(inst *Instance, maxNodes int) (*Schedule, int, error) {
	res, err := exact.Solve(inst, exact.Options{MaxNodes: maxNodes})
	if err != nil {
		return nil, 0, err
	}
	return res.Schedule, res.Calibrations, nil
}

// SolveLazy runs the practical greedy heuristic (beyond the paper):
// jobs in deadline order, fitted into existing calibrations' free
// space, with new calibrations opened as late as the deadline allows.
// No approximation guarantee, but fast and frugal with machines; pass
// maxMachines = 0 to let it use as many machines as it needs.
func SolveLazy(inst *Instance, maxMachines int) (*Schedule, error) {
	return heur.Lazy(inst, heur.Options{MaxMachines: maxMachines})
}

// SolveOnline schedules the instance with the online lazy policy
// (extension beyond the paper): jobs are revealed at their release
// times, decisions are irrevocable, and calibrations can only start at
// or after the decision moment. Always feasible; experiment T14
// measures the premium over offline scheduling.
func SolveOnline(inst *Instance) (*Schedule, error) { return online.Lazy(inst) }

// LazyBinning runs the unit-job baseline from Bender et al. (SPAA
// 2013): optimal on a single machine, a greedy 2-approximation-style
// baseline on several. All jobs must have Processing == 1.
func LazyBinning(inst *Instance) (*Schedule, error) { return unitise.LazyBinning(inst) }

// NaiveGrid runs the always-calibrated straw man: every machine
// calibrated back-to-back across the whole horizon, jobs EDF-filled.
// Useful as the "what if we never stopped calibrating" comparison.
func NaiveGrid(inst *Instance) (*Schedule, error) { return unitise.NaiveGrid(inst) }
