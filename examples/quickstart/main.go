// Quickstart: build a small ISE instance, solve it, inspect the
// schedule, and verify feasibility — the minimal end-to-end use of the
// calib public API.
package main

import (
	"fmt"
	"log"

	"calib"
)

func main() {
	// A testing device must be recalibrated every T = 10 time units.
	// One machine is available; five tests arrive with windows and
	// durations.
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 40, 5)  // job 0: relaxed long window
	inst.AddJob(0, 35, 3)  // job 1
	inst.AddJob(18, 30, 6) // job 2: short window
	inst.AddJob(30, 40, 8) // job 3: tight, late
	inst.AddJob(25, 60, 4) // job 4

	sol, err := calib.Solve(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		log.Fatalf("solver bug: %v", err)
	}

	fmt.Printf("jobs: %d (%d long-window, %d short-window)\n", inst.N(), sol.LongJobs, sol.ShortJobs)
	fmt.Printf("calibrations used: %d (lower bound on optimum: %d)\n", sol.Calibrations, sol.LowerBound)
	fmt.Printf("machines used: %d\n\n", sol.MachinesUsed)

	fmt.Println("calibrations (machine @ start):")
	for _, c := range sol.Schedule.Calibrations {
		fmt.Printf("  m%d @ %d covers [%d, %d)\n", c.Machine, c.Start, c.Start, c.Start+inst.T)
	}
	fmt.Println("placements (job -> machine @ start):")
	sol.Schedule.SortCanonical()
	for _, p := range sol.Schedule.Placements {
		j := inst.Jobs[p.Job]
		fmt.Printf("  job %d -> m%d @ %d (runs [%d, %d), window [%d, %d))\n",
			p.Job, p.Machine, p.Start, p.Start, p.Start+j.Processing, j.Release, j.Deadline)
	}

	// For tiny instances, compare with the provably optimal solution.
	_, opt, err := calib.SolveExact(inst, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact optimum: %d calibrations (approximation ratio %.2f)\n",
		opt, float64(sol.Calibrations)/float64(opt))
}
