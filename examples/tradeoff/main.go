// Tradeoff: machine augmentation vs speed augmentation (Theorem 14).
//
// The long-window algorithm normally buys its guarantee with extra
// machines (up to 18m at unit speed). When machines are the scarce
// resource — say the lab owns exactly m testing devices but can run
// them in a faster mode — the paper's Lemma 13 transformation folds
// the 18m-machine schedule onto the original m machines running 36x
// faster, without increasing calibrations. This example runs both
// forms on the same long-window fleet and compares.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"calib"
)

func main() {
	const (
		T        = 10
		machines = 2
	)
	rng := rand.New(rand.NewSource(7))

	// Long-window jobs only (d - r >= 2T): relaxed review windows.
	inst := calib.NewInstance(T, machines)
	for i := 0; i < 10; i++ {
		r := calib.Time(rng.Intn(60))
		p := calib.Time(1 + rng.Intn(T))
		w := calib.Time(2*T + rng.Intn(3*int(T)))
		inst.AddJob(r, r+w, p)
	}

	// Form 1: machine augmentation (Theorem 12).
	sol, err := calib.Solve(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		log.Fatalf("solver bug: %v", err)
	}

	// Form 2: speed augmentation (Theorem 14).
	fast, err := calib.SolveWithSpeed(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := calib.Validate(fast.Scaled, fast.Schedule); err != nil {
		log.Fatalf("speed solver bug: %v", err)
	}

	fmt.Printf("long-window fleet: n=%d jobs, T=%d, m=%d machines\n\n", inst.N(), T, machines)
	fmt.Printf("%-34s %12s %10s %8s\n", "form", "calibrations", "machines", "speed")
	fmt.Printf("%-34s %12d %10d %8d\n", "machine augmentation (Thm 12)",
		sol.Calibrations, sol.MachinesUsed, 1)
	fmt.Printf("%-34s %12d %10d %8d\n", "speed augmentation (Thm 14)",
		fast.Calibrations, fast.Schedule.MachinesUsed(), fast.Schedule.Speed)
	fmt.Printf("\nboth stay within 12x the optimal calibration count; the speed form\n")
	fmt.Printf("never uses more than the %d machines the lab actually owns.\n", machines)
}
