// Blackbox: Theorem 1's genericity over the machine-minimization
// algorithm.
//
// The short-window half of the algorithm uses an MM solver as a black
// box, and the approximation guarantee scales with the box's quality
// alpha. This example solves the same short-window instance with each
// available box and shows how the box's machine counts propagate to
// calibrations.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"calib"
)

func main() {
	const T = 10
	rng := rand.New(rand.NewSource(99))

	// Short-window jobs (d - r < 2T): urgent tests with tight windows.
	// Each cluster contains the classic pair that defeats earliest-
	// deadline list scheduling on one machine — job A must run exactly
	// [base+3, base+5) and job B [base, base+3), but EDD tries A first
	// — so the greedy box needs two machines where one suffices.
	inst := calib.NewInstance(T, 2)
	for c := 0; c < 3; c++ {
		base := calib.Time(c * 50)
		inst.AddJob(base+3, base+5, 2) // A: fixed slot, earliest deadline
		inst.AddJob(base, base+6, 3)   // B: must precede A
	}
	for i := 0; i < 3; i++ {
		r := calib.Time(rng.Intn(120))
		p := calib.Time(2 + rng.Intn(int(T)-2))
		slack := calib.Time(rng.Intn(int(T)))
		inst.AddJob(r, r+p+slack, p)
	}

	fmt.Printf("short-window instance: n=%d, T=%d\n", inst.N(), T)
	fmt.Printf("lower bound: %d calibrations\n\n", calib.LowerBound(inst))
	fmt.Printf("%-12s %14s %10s\n", "MM box", "calibrations", "machines")
	for _, box := range []calib.MMBox{calib.MMGreedy, calib.MMExact, calib.MMLPRound} {
		sol, err := calib.Solve(inst, &calib.Options{MMBox: box})
		if err != nil {
			log.Fatal(err)
		}
		if err := calib.Validate(inst, sol.Schedule); err != nil {
			log.Fatalf("%v box produced an infeasible schedule: %v", box, err)
		}
		fmt.Printf("%-12s %14d %10d\n", box, sol.Calibrations, sol.MachinesUsed)
	}
	fmt.Println("\na better (smaller-alpha) MM box yields fewer machines and calibrations,")
	fmt.Println("exactly as Theorem 1 predicts.")
}
