// Capacity: answer a planning question with the solver in the loop.
//
// A lab has a fixed calibration budget per campaign (each calibration
// consumes reference material). Given the budget, how large a test
// batch can be accepted per maintenance period? This example sweeps
// the batch size, schedules each campaign with the lazy solver (and
// the paper's pipeline as a cross-check at small sizes), and reports
// the largest batch whose calibration cost fits the budget.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"calib"
)

func main() {
	const (
		T       = 10
		period  = 40
		batches = 5
		budget  = 14 // calibrations available for the whole campaign
	)
	rng := rand.New(rand.NewSource(1))

	build := func(batchSize int) *calib.Instance {
		inst := calib.NewInstance(T, 2)
		r := rand.New(rand.NewSource(rng.Int63())) // per-size stream
		for b := 0; b < batches; b++ {
			release := calib.Time(b * period)
			for i := 0; i < batchSize; i++ {
				p := calib.Time(2 + r.Intn(T-2))
				inst.AddJob(release, release+period, p)
			}
		}
		return inst
	}

	fmt.Printf("campaign: %d periods of %d ticks, T=%d, budget %d calibrations\n\n", batches, period, T, budget)
	fmt.Printf("%-10s %8s %14s %10s %s\n", "batch", "jobs", "calibrations", "machines", "verdict")
	bestFit := 0
	for size := 1; size <= 8; size++ {
		inst := build(size)
		sched, err := calib.SolveLazy(inst, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := calib.Validate(inst, sched); err != nil {
			log.Fatalf("solver bug: %v", err)
		}
		verdict := "over budget"
		if sched.NumCalibrations() <= budget {
			verdict = "fits"
			bestFit = size
		}
		fmt.Printf("%-10d %8d %14d %10d %s\n",
			size, inst.N(), sched.NumCalibrations(), sched.MachinesUsed(), verdict)
	}
	fmt.Printf("\nlargest batch within budget: %d tests per period\n", bestFit)
	fmt.Printf("(lower bound check: LB(batch=%d) = %d <= %d)\n",
		bestFit, calib.LowerBound(build(bestFit)), budget)
}
