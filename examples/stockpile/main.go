// Stockpile: the motivating Integrated Stockpile Evaluation scenario.
//
// A weapons lab must run periodic integrity tests: every maintenance
// period, a batch of devices arrives, each needing a test of a known
// duration before the period ends. Test equipment must have been
// calibrated within the last T time units to produce valid results,
// and calibrations are the expensive resource to minimize.
//
// The example compares three policies on the same campaign:
//
//  1. the always-calibrated naive grid (the "keep everything hot"
//     straw man),
//  2. this paper's calibration-aware solver, and
//  3. the combinatorial lower bound on any policy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"calib"
)

func main() {
	const (
		T         = 12 // calibration validity
		period    = 60 // maintenance period between batches
		batches   = 6
		batchSize = 4
		machines  = 3
	)
	rng := rand.New(rand.NewSource(2015))

	inst := calib.NewInstance(T, machines)
	for b := 0; b < batches; b++ {
		release := calib.Time(b * period)
		for i := 0; i < batchSize; i++ {
			dur := calib.Time(2 + rng.Intn(T-2)) // test duration in [2, T)
			inst.AddJob(release, release+period, dur)
		}
	}
	fmt.Printf("campaign: %d batches x %d tests, period %d, calibration validity T=%d, %d machines\n\n",
		batches, batchSize, period, T, machines)

	naive, err := calib.NaiveGrid(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := calib.Validate(inst, naive); err != nil {
		log.Fatalf("naive schedule invalid: %v", err)
	}

	sol, err := calib.Solve(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		log.Fatalf("solver bug: %v", err)
	}

	// Every window here spans a full period >= 2T, so the whole
	// campaign is long-window and Theorem 14 applies: fold the
	// machine-augmented schedule onto the 3 machines the lab actually
	// owns, run 36x faster, with no extra calibrations.
	fast, err := calib.SolveWithSpeed(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := calib.Validate(fast.Scaled, fast.Schedule); err != nil {
		log.Fatalf("solver bug (speed): %v", err)
	}

	lb := calib.LowerBound(inst)
	fmt.Printf("%-34s %10s %10s %8s\n", "policy", "calibr.", "machines", "speed")
	fmt.Printf("%-34s %10d %10d %8d\n", "always-calibrated grid", naive.NumCalibrations(), naive.MachinesUsed(), 1)
	fmt.Printf("%-34s %10d %10d %8d\n", "calibration-aware (Thm 12)", sol.Calibrations, sol.MachinesUsed, 1)
	fmt.Printf("%-34s %10d %10d %8d\n", "calibration-aware (Thm 14)", fast.Calibrations, fast.Schedule.MachinesUsed(), fast.Schedule.Speed)
	fmt.Printf("%-34s %10d %10s %8s\n", "lower bound (any policy)", lb, "-", "-")
	fmt.Printf("\nthe calibration-aware schedules save %.0f%% of calibrations vs the grid\n",
		100*(1-float64(fast.Calibrations)/float64(naive.NumCalibrations())))
}
