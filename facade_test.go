package calib_test

import (
	"math/rand"
	"testing"

	"calib"
	"calib/internal/workload"
)

func TestCompactMachinesOption(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst, _ := workload.Mixed(rng, 14, 1, 10, 0.5)
	plain, err := calib.Solve(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := calib.Solve(inst, &calib.Options{CompactMachines: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, compact.Schedule); err != nil {
		t.Fatalf("compacted schedule infeasible: %v", err)
	}
	if compact.Calibrations != plain.Calibrations {
		t.Errorf("compaction changed calibrations: %d vs %d", compact.Calibrations, plain.Calibrations)
	}
	if compact.MachinesUsed > plain.MachinesUsed {
		t.Errorf("compaction increased machines: %d vs %d", compact.MachinesUsed, plain.MachinesUsed)
	}
}

func TestCompactStandalone(t *testing.T) {
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 25, 4)
	inst.AddJob(30, 55, 4)
	sol, err := calib.Solve(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := calib.Compact(inst, sol.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, c); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if c.MachinesUsed() > sol.MachinesUsed {
		t.Errorf("compaction used more machines (%d > %d)", c.MachinesUsed(), sol.MachinesUsed)
	}
}

func TestLocalSearchOption(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst, _ := workload.Mixed(rng, 14, 1, 10, 0.5)
	plain, err := calib.Solve(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := calib.Solve(inst, &calib.Options{LocalSearch: true, CompactMachines: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, improved.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if improved.Calibrations > plain.Calibrations {
		t.Errorf("local search made it worse: %d > %d", improved.Calibrations, plain.Calibrations)
	}
	// Standalone Improve on the plain schedule agrees.
	imp2, err := calib.Improve(inst, plain.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if imp2.NumCalibrations() > plain.Calibrations {
		t.Error("standalone Improve made it worse")
	}
}

func TestSolveLazyFacade(t *testing.T) {
	inst := calib.NewInstance(10, 1)
	inst.AddJob(0, 100, 5)
	inst.AddJob(90, 100, 5)
	s, err := calib.SolveLazy(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, s); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if s.NumCalibrations() != 1 {
		t.Errorf("lazy calibrations = %d, want 1", s.NumCalibrations())
	}
	// Budget too small for an instance needing two machines.
	inst2 := calib.NewInstance(10, 1)
	inst2.AddJob(0, 10, 10)
	inst2.AddJob(0, 10, 10)
	if _, err := calib.SolveLazy(inst2, 1); err == nil {
		t.Error("budget violation not reported")
	}
}

// TestLazyVsPipelineQuality documents the practical ranking: the lazy
// heuristic should rarely lose to the worst-case pipeline on random
// mixed workloads (and must never produce an infeasible schedule).
func TestLazyVsPipelineQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	lazyWins := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		inst, _ := workload.Mixed(rng, 16, 1, 10, 0.5)
		sol, err := calib.Solve(inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		lz, err := calib.SolveLazy(inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := calib.Validate(inst, lz); err != nil {
			t.Fatalf("lazy infeasible: %v", err)
		}
		if lz.NumCalibrations() <= sol.Calibrations {
			lazyWins++
		}
	}
	if lazyWins < trials/2 {
		t.Errorf("lazy heuristic won only %d/%d — regression in heuristic quality?", lazyWins, trials)
	}
}
