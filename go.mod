module calib

go 1.22
