package calib_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"calib"
)

// TestTracedSolveEndToEnd runs the full pipeline with telemetry on and
// checks the acceptance surface: the span tree covers every phase
// (partition, LP, rounding, EDF, MM) and the metrics JSON parses and
// carries the headline series, including the pre-declared ones.
func TestTracedSolveEndToEnd(t *testing.T) {
	inst := calib.NewInstance(10, 2)
	// Long-window jobs (window >= 2T = 20) drive partition/lp/rounding/
	// edf; short-window jobs drive the mm spans.
	inst.AddJob(0, 40, 5)
	inst.AddJob(5, 50, 8)
	inst.AddJob(30, 60, 6)
	inst.AddJob(0, 15, 4)
	inst.AddJob(2, 14, 3)
	inst.AddJob(20, 33, 5)

	tr := calib.NewTrace("solve")
	met := calib.NewMetrics()
	sol, err := calib.Solve(inst, &calib.Options{
		WarmStart: true,
		MMBox:     calib.MMLPSearch,
		Trace:     tr,
		Metrics:   met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	var text bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"solve", "partition", "lp", "rounding", "edf", "mm"} {
		if !strings.Contains(text.String(), phase) {
			t.Errorf("span tree missing phase %q:\n%s", phase, text.String())
		}
	}
	var tree bytes.Buffer
	if err := tr.WriteJSON(&tree); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(tree.Bytes()) {
		t.Errorf("trace JSON invalid:\n%s", tree.String())
	}

	var js bytes.Buffer
	if err := met.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal(js.Bytes(), &dump); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, js.String())
	}
	for _, key := range []string{
		"lp_pivots_total", "lp_warm_start_hits_total",
		"lp_cold_fallback_total", "decomp_components",
		"decomp_component_seconds", "solve_seconds",
		"tise_resolves_total", "mm_lp_probes_total",
	} {
		if _, ok := dump[key]; !ok {
			t.Errorf("metrics JSON missing %q:\n%s", key, js.String())
		}
	}
	if v, _ := dump["lp_pivots_total"].(float64); v <= 0 {
		t.Errorf("lp_pivots_total = %v, want > 0", dump["lp_pivots_total"])
	}
	if v, _ := dump["tise_resolves_total"].(float64); v <= 0 {
		t.Errorf("tise_resolves_total = %v, want > 0", dump["tise_resolves_total"])
	}
	if v, _ := dump["mm_lp_probes_total"].(float64); v <= 0 {
		t.Errorf("mm_lp_probes_total = %v, want > 0", dump["mm_lp_probes_total"])
	}
	hist, _ := dump["solve_seconds"].(map[string]any)
	if hist == nil {
		t.Fatalf("solve_seconds is not a histogram: %v", dump["solve_seconds"])
	}
	if c, _ := hist["count"].(float64); c != 1 {
		t.Errorf("solve_seconds count = %v, want 1", hist["count"])
	}
}

// TestDecomposedSolveMetrics exercises the parallel path: a gapped
// instance must report its component count and fill the per-component
// histogram once per component.
func TestDecomposedSolveMetrics(t *testing.T) {
	inst := calib.NewInstance(10, 1)
	// Three clusters separated by gaps > T, so decomp.Split finds
	// three components.
	inst.AddJob(0, 25, 5)
	inst.AddJob(2, 30, 4)
	inst.AddJob(100, 130, 6)
	inst.AddJob(105, 135, 5)
	inst.AddJob(200, 228, 7)

	tr := calib.NewTrace("solve")
	met := calib.NewMetrics()
	sol, err := calib.Solve(inst, &calib.Options{
		WarmStart:   true,
		Parallelism: 2,
		Trace:       tr,
		Metrics:     met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	var js bytes.Buffer
	if err := met.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal(js.Bytes(), &dump); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, js.String())
	}
	if v, _ := dump["decomp_components"].(float64); v != 3 {
		t.Errorf("decomp_components = %v, want 3", dump["decomp_components"])
	}
	if v, _ := dump["decomp_tasks_total"].(float64); v != 3 {
		t.Errorf("decomp_tasks_total = %v, want 3", dump["decomp_tasks_total"])
	}
	hist, _ := dump["decomp_component_seconds"].(map[string]any)
	if hist == nil {
		t.Fatalf("decomp_component_seconds is not a histogram: %v", dump["decomp_component_seconds"])
	}
	if c, _ := hist["count"].(float64); c != 3 {
		t.Errorf("decomp_component_seconds count = %v, want 3", hist["count"])
	}
	if v, _ := dump["decomp_pool_busy_max"].(float64); v < 1 {
		t.Errorf("decomp_pool_busy_max = %v, want >= 1", dump["decomp_pool_busy_max"])
	}
	var text bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(text.String(), "component"); got < 3 {
		t.Errorf("span tree has %d component spans, want >= 3:\n%s", got, text.String())
	}
}
