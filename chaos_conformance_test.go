// Chaos conformance suite: the executable contract of the fault
// injection subsystem (internal/fault) and the crash-safe state layer.
// It pins down, under -race:
//
//   - each injection point's observable behavior at the calib facade
//     (latency slows, budget burn exhausts, panics propagate from
//     Solve but are degraded around by SolveRobust),
//   - that every error surfaced by a limited solve wraps exactly one
//     robust taxonomy sentinel — callers never need errors.As chains,
//   - that injection is deterministic: same seed, same schedule of
//     faults, same answers; a different seed differs,
//   - that a "crashed" daemon rebuilt from its cache snapshot serves
//     the old hits without re-solving, and a killed batch run resumed
//     from its checkpoint matches an uninterrupted run row-for-row,
//   - that none of the above leaks goroutines.
//
// The out-of-process half — real SIGKILLs against cmd/ised and
// cmd/isebatch — lives in scripts/chaos_smoke.sh; this file is the
// in-process contract the smoke script builds on.
package calib_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"calib"
	"calib/api"
	"calib/client"
	"calib/internal/batch"
	"calib/internal/fault"
	"calib/internal/obs"
	"calib/internal/robust"
	"calib/internal/server"
)

// chaosComponent returns one time component of n long-window jobs
// starting at offset: releases 1 tick apart (no decomposition gap),
// windows of 4T (long), so with n > the exact-rung job cap the robust
// ladder must go through the LP rung — where the injection points
// live.
func chaosComponent(inst *calib.Instance, offset calib.Time, n int) {
	for j := 0; j < n; j++ {
		r := offset + calib.Time(j)
		inst.AddJob(r, r+4*inst.T, 5)
	}
}

// chaosInstance is a single 16-job component (too big for the exact
// rung, so SolveRobust's first attempt is the LP rung).
func chaosInstance() *calib.Instance {
	inst := calib.NewInstance(10, 2)
	chaosComponent(inst, 0, 16)
	return inst
}

// chaosInstance2 adds a second component separated by a gap >= T, so
// decomposed solves contain per-component failures.
func chaosInstance2() *calib.Instance {
	inst := calib.NewInstance(10, 2)
	chaosComponent(inst, 0, 16)
	chaosComponent(inst, 1000, 16)
	return inst
}

// sentinels is the complete robust error taxonomy. Conformance:
// every error from a limited solve matches exactly one of these.
var sentinels = []error{
	robust.ErrCanceled,
	robust.ErrBudgetExhausted,
	robust.ErrInfeasible,
	robust.ErrNumeric,
	robust.ErrPanic,
}

func matchingSentinels(err error) []error {
	var got []error
	for _, s := range sentinels {
		if errors.Is(err, s) {
			got = append(got, s)
		}
	}
	return got
}

// checkNoGoroutineLeak asserts the goroutine count returns to the
// baseline, allowing the runtime a moment to retire exiting workers.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosPanicInjection: an injected solver panic propagates from
// plain Solve (monolithic path) but SolveRobust's ladder contains it,
// degrades the component to the heuristic rung, and still returns a
// feasible schedule — with both the containment and the injection
// visible in metrics.
func TestChaosPanicInjection(t *testing.T) {
	inst := chaosInstance()

	t.Run("solve-propagates", func(t *testing.T) {
		inj := fault.New(1, nil).Arm(fault.SolvePanic, 1)
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not propagate from Solve")
			}
		}()
		_, _ = calib.Solve(inst, &calib.Options{Fault: inj})
	})

	t.Run("solverobust-degrades", func(t *testing.T) {
		met := calib.NewMetrics()
		inj := fault.New(1, met).Arm(fault.SolvePanic, 1)
		sol, err := calib.SolveRobust(inst, &calib.Options{Fault: inj, Metrics: met})
		if err != nil {
			t.Fatalf("SolveRobust under panic injection: %v", err)
		}
		if !sol.Degraded {
			t.Fatal("panic injection did not degrade the component")
		}
		if verr := calib.Validate(inst, sol.Schedule); verr != nil {
			t.Fatalf("degraded schedule infeasible: %v", verr)
		}
		if got := met.Counter(obs.MRobustPanics).Value(); got < 1 {
			t.Fatalf("%s = %d, want >= 1", obs.MRobustPanics, got)
		}
		if got := met.CounterWith(obs.MFaultInjected, "point", string(fault.SolvePanic)).Value(); got < 1 {
			t.Fatalf("%s{point=solve_panic} = %d, want >= 1", obs.MFaultInjected, got)
		}
	})
}

// TestChaosLatencyInjection: injected latency slows the solve without
// changing its answer.
func TestChaosLatencyInjection(t *testing.T) {
	inst := chaosInstance()
	clean, err := calib.Solve(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 80 * time.Millisecond
	inj := fault.New(1, nil).ArmDuration(fault.SolveLatency, 1, delay)
	t0 := time.Now()
	slow, err := calib.Solve(inst, &calib.Options{Fault: inj})
	if err != nil {
		t.Fatalf("Solve under latency injection: %v", err)
	}
	if elapsed := time.Since(t0); elapsed < delay {
		t.Fatalf("solve took %v, injected latency was %v", elapsed, delay)
	}
	if slow.Calibrations != clean.Calibrations {
		t.Fatalf("latency injection changed the answer: %d vs %d",
			slow.Calibrations, clean.Calibrations)
	}
}

// TestChaosErrorsWrapOneSentinel: every failure mode of a limited
// solve surfaces as an error wrapping exactly one taxonomy sentinel.
func TestChaosErrorsWrapOneSentinel(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		want error
		run  func() error
	}{
		{"budget-burn", robust.ErrBudgetExhausted, func() error {
			inj := fault.New(1, nil).ArmAmount(fault.BudgetBurn, 1, 1<<40)
			_, err := calib.Solve(chaosInstance(), &calib.Options{Budget: 100, Fault: inj})
			return err
		}},
		{"hard-cancel", robust.ErrCanceled, func() error {
			_, err := calib.Solve(chaosInstance(), &calib.Options{Context: canceled})
			return err
		}},
		{"panic-decomposed", robust.ErrPanic, func() error {
			// On the decomposed path a panicking component is contained
			// (robust.RecoverTo) and surfaces as an error instead of
			// killing the pool worker.
			inj := fault.New(1, nil).Arm(fault.SolvePanic, 1)
			_, err := calib.Solve(chaosInstance2(), &calib.Options{Parallelism: 2, Fault: inj})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected an error")
			}
			got := matchingSentinels(err)
			if len(got) != 1 {
				t.Fatalf("error %q matches %d sentinels (%v), want exactly 1", err, len(got), got)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %q wraps %v, want %v", err, got[0], tc.want)
			}
		})
	}
}

// TestChaosDeterminism: the fault schedule is a pure function of the
// seed. Two sequences of solves with same-seed injectors agree on
// every outcome — degradation and objective — and a different seed
// produces a different fault schedule.
func TestChaosDeterminism(t *testing.T) {
	inst := chaosInstance()
	const runs = 8
	outcome := func(seed int64) (degraded [runs]bool, cals [runs]int) {
		inj := fault.New(seed, nil).Arm(fault.SolvePanic, 0.5)
		for i := 0; i < runs; i++ {
			sol, err := calib.SolveRobust(inst, &calib.Options{Fault: inj})
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, i, err)
			}
			degraded[i], cals[i] = sol.Degraded, sol.Calibrations
		}
		return
	}
	deg1a, cal1a := outcome(7)
	deg1b, cal1b := outcome(7)
	if deg1a != deg1b || cal1a != cal1b {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", deg1a, cal1a, deg1b, cal1b)
	}
	deg2, _ := outcome(8)
	if deg1a == deg2 {
		t.Fatalf("seeds 7 and 8 produced the identical fault schedule %v", deg1a)
	}
}

// TestChaosSnapshotRestart simulates the daemon kill/restart cycle
// in-process: serve real solves, snapshot the cache (as the periodic
// saver would), abandon the server without any graceful shutdown (the
// SIGKILL stand-in), and boot a replacement from the snapshot. The
// replacement must serve the old hits from cache. The degraded
// variant damages the snapshot first: the restore discards what fails
// its CRC and the daemon still boots and serves.
func TestChaosSnapshotRestart(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := filepath.Join(t.TempDir(), "cache.snap")

	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv)
	inst := chaosInstance()
	resp := postSolve(t, ts.URL, inst)
	if resp.Cached {
		t.Fatal("first solve reported cached")
	}
	if n, err := srv.SaveCache(snap); err != nil || n == 0 {
		t.Fatalf("SaveCache: (%d, %v)", n, err)
	}
	ts.Close() // the old process is gone; no drain, no final save

	t.Run("clean-snapshot", func(t *testing.T) {
		met := calib.NewMetrics()
		srv2 := server.New(server.Config{Metrics: met})
		st, err := srv2.LoadCache(snap)
		if err != nil || st.Restored == 0 || st.Corrupt != 0 {
			t.Fatalf("LoadCache: (%+v, %v)", st, err)
		}
		ts2 := httptest.NewServer(srv2)
		defer ts2.Close()
		out := postSolve(t, ts2.URL, inst)
		if !out.Cached {
			t.Fatal("restarted server did not serve the prior hit from cache")
		}
		if out.Key != resp.Key || out.Calibrations != resp.Calibrations {
			t.Fatalf("restored answer differs: %+v vs %+v", out, resp)
		}
		if err := calib.Validate(inst, out.Schedule); err != nil {
			t.Fatalf("restored schedule infeasible: %v", err)
		}
	})

	t.Run("damaged-snapshot", func(t *testing.T) {
		raw, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xFF
		bad := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(bad, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		met := calib.NewMetrics()
		srv3 := server.New(server.Config{Metrics: met})
		if _, err := srv3.LoadCache(bad); err != nil {
			t.Fatalf("damaged snapshot must not fail the boot: %v", err)
		}
		if got := met.Counter(obs.MCacheRestoreCorrupt).Value(); got == 0 {
			t.Fatalf("%s = 0 after restoring a damaged snapshot", obs.MCacheRestoreCorrupt)
		}
		ts3 := httptest.NewServer(srv3)
		defer ts3.Close()
		// A damaged snapshot costs cache entries, never service: the
		// solve still answers (fresh or cached), feasibly.
		out := postSolve(t, ts3.URL, inst)
		if err := calib.Validate(inst, out.Schedule); err != nil {
			t.Fatalf("post-damage solve infeasible: %v", err)
		}
	})

	checkNoGoroutineLeak(t, before)
}

func postSolve(t *testing.T, base string, inst *calib.Instance) *api.SolveResponse {
	t.Helper()
	out, err := client.New(base).Solve(context.Background(), &api.SolveRequest{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosCheckpointKillResume: a batch run killed partway (simulated
// by truncating the checkpoint journal mid-file, torn tail included)
// resumes to a report identical to an uninterrupted run, row for row,
// modulo the wall-clock column.
func TestChaosCheckpointKillResume(t *testing.T) {
	before := runtime.NumGoroutine()
	items := make([]batch.Item, 4)
	for i := range items {
		inst := calib.NewInstance(10, 1)
		chaosComponent(inst, calib.Time(i*100), 3)
		items[i] = batch.Item{Name: fmt.Sprintf("inst-%d", i), Instance: inst}
	}
	policies := batch.DefaultPoliciesCtl(batch.Limits{})
	uninterrupted := batch.Run(items, policies, 2)

	// The doomed run: complete, then tear its journal to look like a
	// SIGKILL landed mid-write two thirds of the way through.
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := batch.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.RunCheckpoint(items, policies, 2, ck); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:2*len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := batch.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() == 0 || ck2.Len() >= len(items)*len(policies) {
		t.Fatalf("torn checkpoint kept %d rows, want a strict subset", ck2.Len())
	}
	resumed, err := batch.RunCheckpoint(items, policies, 2, ck2)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(rows []batch.Row) []batch.Row {
		out := append([]batch.Row(nil), rows...)
		for i := range out {
			out[i].Millis = 0
		}
		return out
	}
	if !reflect.DeepEqual(norm(uninterrupted.Rows), norm(resumed.Rows)) {
		t.Fatal("resumed report differs from the uninterrupted run")
	}
	checkNoGoroutineLeak(t, before)
}

// TestChaosRobustNoLeak: panic-injected robust solves, decomposed and
// not, leave no goroutines behind.
func TestChaosRobustNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	inst := chaosInstance2()
	inj := fault.New(3, nil).Arm(fault.SolvePanic, 0.7)
	for i := 0; i < 6; i++ {
		sol, err := calib.SolveRobust(inst, &calib.Options{Parallelism: 2, Fault: inj})
		if err != nil {
			t.Fatal(err)
		}
		if verr := calib.Validate(inst, sol.Schedule); verr != nil {
			t.Fatal(verr)
		}
	}
	checkNoGoroutineLeak(t, before)
}
