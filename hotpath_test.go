package calib_test

import (
	"math/rand"
	"testing"

	"calib"
	"calib/internal/workload"
)

// TestWarmStartOption: the bounded/warm-started hot path must agree
// with the default pipeline on feasibility and LP objective.
func TestWarmStartOption(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		inst, _ := workload.Mixed(rng, 14, 2, 10, 0.6)
		slow, err := calib.Solve(inst, nil)
		if err != nil {
			t.Fatalf("trial %d default: %v", trial, err)
		}
		fast, err := calib.Solve(inst, &calib.Options{WarmStart: true})
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if err := calib.Validate(inst, fast.Schedule); err != nil {
			t.Fatalf("trial %d: warm schedule infeasible: %v", trial, err)
		}
		if d := slow.LPObjective - fast.LPObjective; d > 1e-6 || d < -1e-6 {
			t.Fatalf("trial %d: LP objective default %v != warm %v", trial, slow.LPObjective, fast.LPObjective)
		}
	}
}

// TestWarmStartExactLPPrecedence: ExactLP keeps the rational engine
// even when WarmStart is also set.
func TestWarmStartExactLPPrecedence(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	inst, _ := workload.Long(rng, 6, 1, 8)
	both, err := calib.Solve(inst, &calib.Options{ExactLP: true, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := calib.Solve(inst, &calib.Options{ExactLP: true})
	if err != nil {
		t.Fatal(err)
	}
	if both.LPObjective != exact.LPObjective {
		t.Fatalf("ExactLP+WarmStart objective %v != ExactLP %v", both.LPObjective, exact.LPObjective)
	}
}

// TestParallelismOption: clustered instances decompose; the result
// stays feasible, deterministic across worker counts, and reports the
// summed LP objective.
func TestParallelismOption(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	inst, _ := workload.Clustered(rng, 3, 6, 2, 10)
	mono, err := calib.Solve(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		sol, err := calib.Solve(inst, &calib.Options{Parallelism: par, WarmStart: true})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if err := calib.Validate(inst, sol.Schedule); err != nil {
			t.Fatalf("par %d: infeasible: %v", par, err)
		}
		if d := mono.LPObjective - sol.LPObjective; d > 1e-6 || d < -1e-6 {
			t.Fatalf("par %d: LP objective %v != monolithic %v", par, sol.LPObjective, mono.LPObjective)
		}
	}
}

// TestMMLPSearchBox exercises the new MM black box through the facade.
func TestMMLPSearchBox(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	inst, _ := workload.Mixed(rng, 12, 2, 8, 0.3)
	sol, err := calib.Solve(inst, &calib.Options{MMBox: calib.MMLPSearch})
	if err != nil {
		t.Fatal(err)
	}
	if err := calib.Validate(inst, sol.Schedule); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if calib.MMLPSearch.String() != "lp-search" {
		t.Fatalf("MMLPSearch.String() = %q", calib.MMLPSearch.String())
	}
}
