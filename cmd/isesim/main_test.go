package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cliSpec = `{
  "name": "cli",
  "seed": 5,
  "duration_ms": 250,
  "cost": {"base_us": 12000, "per_job_us": 400, "jitter": 0.2},
  "classes": [
    {"name": "only", "arrival": {"process": "poisson", "rate_per_sec": 50},
     "instances": {"family": "mixed", "n": 10, "t": 8, "distinct": 5}, "slo_ms": 25}
  ],
  "policies": [
    {"name": "tight", "max_inflight": 1, "max_queue": 2, "queue_wait_ms": 10, "cache_entries": 64},
    {"name": "roomy", "max_inflight": 8, "max_queue": 8, "queue_wait_ms": 20, "cache_entries": 1024}
  ]
}`

func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(cliSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpecDeterministic(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	out1 := filepath.Join(dir, "a.json")
	out2 := filepath.Join(dir, "b.json")

	var buf bytes.Buffer
	if err := run([]string{"-spec", spec, "-out", out1}, &buf); err != nil {
		t.Fatalf("run 1: %v\n%s", err, buf.String())
	}
	if err := run([]string{"-spec", spec, "-out", out2}, &buf); err != nil {
		t.Fatalf("run 2: %v\n%s", err, buf.String())
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same spec+seed wrote different reports")
	}
	if !strings.Contains(string(a), `"schema": "ise-capacity/v1"`) {
		t.Fatalf("report missing schema stamp:\n%s", a)
	}
}

func TestRunBaselineGate(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	base := filepath.Join(dir, "base.json")

	var buf bytes.Buffer
	if err := run([]string{"-spec", spec, "-out", base}, &buf); err != nil {
		t.Fatalf("baseline run: %v\n%s", err, buf.String())
	}
	// Same spec vs its own report: must pass the gate.
	out := filepath.Join(dir, "cur.json")
	buf.Reset()
	if err := run([]string{"-spec", spec, "-out", out, "-baseline", base}, &buf); err != nil {
		t.Fatalf("self-comparison failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "capacity gate") {
		t.Fatalf("no gate verdict in output:\n%s", buf.String())
	}
	// Doctor the baseline's numbers below what any run produces; with
	// zero tolerance the gate must fail deterministically.
	mangle, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	lowered := strings.ReplaceAll(string(mangle), `"shed_rate": 0.`, `"shed_rate": 0.000`)
	lowered = zeroOut(lowered, `"p99_ms": `)
	if err := os.WriteFile(base, []byte(lowered), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run([]string{"-spec", spec, "-out", out, "-baseline", base, "-tolerance", "0"}, &buf)
	if err == nil {
		t.Fatalf("gate passed against a zeroed baseline:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION:") {
		t.Fatalf("no REGRESSION lines:\n%s", buf.String())
	}
}

// zeroOut rewrites every `"field": <num>` occurrence to 0.
func zeroOut(s, prefix string) string {
	var b strings.Builder
	for {
		i := strings.Index(s, prefix)
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i+len(prefix)])
		b.WriteString("0")
		s = s[i+len(prefix):]
		j := strings.IndexAny(s, ",\n}")
		if j < 0 {
			return b.String()
		}
		s = s[j:]
	}
}

func TestRunRecordReplay(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	trace := filepath.Join(dir, "trace.jsonl")

	var buf bytes.Buffer
	err := run([]string{"-spec", spec, "-record", trace,
		"-out", filepath.Join(dir, "rec.json")}, &buf)
	if err == nil {
		t.Fatal("-record with two policies accepted")
	}

	buf.Reset()
	if err := run([]string{"-spec", spec, "-compare", "tight", "-record", trace,
		"-out", filepath.Join(dir, "rec.json")}, &buf); err != nil {
		t.Fatalf("record run: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := run([]string{"-replay", trace, "-spec", spec, "-compare", "tight,roomy",
		"-slo-ms", "25", "-out", filepath.Join(dir, "replay.json")}, &buf); err != nil {
		t.Fatalf("replay run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "tight") || !strings.Contains(buf.String(), "roomy") {
		t.Fatalf("replay summary missing policies:\n%s", buf.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no -spec/-replay accepted")
	}
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	if err := run([]string{"-spec", spec, "-compare", "nope",
		"-out", filepath.Join(dir, "x.json")}, &buf); err == nil {
		t.Error("unknown -compare policy accepted")
	}
}
