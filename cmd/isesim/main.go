// Command isesim is the deterministic workload simulator for the ised
// serving layer (internal/sim): it drives the real server mux under a
// virtual clock with a multi-class workload spec or a recorded
// request trace, compares serving policies counterfactually, and
// writes the capacity report CI gates on. See docs/SIMULATOR.md.
//
// Usage:
//
//	isesim -spec testdata/sim/steady.json [-seed 1] [-compare a,b]
//	       [-out BENCH_capacity.json] [-baseline FILE] [-tolerance 0.1]
//	       [-record trace.jsonl]
//	isesim -replay trace.jsonl [-spec policies.json] [-slo-ms 100] ...
//
// With -spec the workload is generated from the spec's classes; with
// -replay it is reconstructed from a -trace-log capture, and the spec
// (when also given) only contributes the policies to compare. Exactly
// one policy must be selected when -record is set. With -baseline the
// exit status is 1 when the report regresses past -tolerance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"calib/internal/obs"
	"calib/internal/server"
	"calib/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "isesim:", err)
		os.Exit(1)
	}
}

// defaultPolicies serves -replay without a spec: the served
// configuration and one roomier counterfactual.
func defaultPolicies() []sim.PolicySpec {
	return []sim.PolicySpec{
		{Name: "baseline", MaxInflight: 4, MaxQueue: 8, QueueWaitMS: 50, CacheEntries: 1024},
		{Name: "wide", MaxInflight: 16, MaxQueue: 32, QueueWaitMS: 50, CacheEntries: 4096},
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("isesim", flag.ContinueOnError)
	specPath := fs.String("spec", "", "workload spec file (JSON; see docs/SIMULATOR.md)")
	replayPath := fs.String("replay", "", "replay a -trace-log JSONL capture instead of generating arrivals")
	seed := fs.Int64("seed", 0, "PRNG seed (0 = the spec's seed, or 1)")
	compare := fs.String("compare", "", "comma-separated policy names to run (default: all)")
	out := fs.String("out", "BENCH_capacity.json", "report output path")
	baseline := fs.String("baseline", "", "baseline report to gate against (single report or merged {\"runs\":[...]})")
	tolerance := fs.Float64("tolerance", 0.10, "allowed relative regression vs -baseline")
	record := fs.String("record", "", "record the run's decision trace to this JSONL file (single policy only)")
	sloMS := fs.Float64("slo-ms", 100, "latency SLO threshold for -replay workloads, milliseconds")
	verbose := fs.Bool("v", false, "print per-class latency lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" && *replayPath == "" {
		return fmt.Errorf("need -spec or -replay")
	}

	var spec *sim.Spec
	if *specPath != "" {
		var err error
		if spec, err = sim.LoadSpec(*specPath); err != nil {
			return err
		}
	}
	runSeed := *seed
	if runSeed == 0 {
		runSeed = 1
		if spec != nil {
			runSeed = spec.Seed
		}
	}

	var w *sim.Workload
	if *replayPath != "" {
		recs, skipped, err := server.ReadTraceLog(*replayPath)
		if err != nil {
			return fmt.Errorf("read trace: %w", err)
		}
		if skipped > 0 {
			fmt.Fprintf(stdout, "trace: skipped %d corrupt record(s)\n", skipped)
		}
		name := "replay"
		if spec != nil {
			name = spec.Name
		}
		if w, err = sim.ReplayWorkload(name, recs, runSeed, *sloMS); err != nil {
			return err
		}
	} else {
		var err error
		if w, err = sim.BuildWorkload(spec, runSeed); err != nil {
			return err
		}
	}

	policies := defaultPolicies()
	if spec != nil {
		policies = spec.Policies
	}
	if *compare != "" {
		var sel []sim.PolicySpec
		for _, name := range strings.Split(*compare, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, p := range policies {
				if p.Name == name {
					sel = append(sel, p)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("-compare: unknown policy %q", name)
			}
		}
		policies = sel
	}

	var tlog *server.TraceLog
	if *record != "" {
		if len(policies) != 1 {
			return fmt.Errorf("-record needs exactly one policy (use -compare), got %d", len(policies))
		}
		var err error
		if tlog, err = server.OpenTraceLog(*record, 0, obs.NewRegistry()); err != nil {
			return err
		}
		defer tlog.Close()
	}

	rep, err := sim.Simulate(w, runSeed, policies, tlog)
	if err != nil {
		return err
	}
	if tlog != nil {
		if err := tlog.Flush(); err != nil {
			return fmt.Errorf("flush trace: %w", err)
		}
	}
	if err := sim.WriteReport(*out, rep); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s: %d requests over %.0fms virtual (seed %d) -> %s\n",
		rep.Name, rep.Requests, rep.VirtualDurationMS, rep.Seed, *out)
	for _, p := range rep.Policies {
		fmt.Fprintf(stdout, "  %-12s shed %5.1f%%  hit %5.1f%%  solves %d  queued %d\n",
			p.Name, p.ShedRate*100, p.CacheHitRate*100, p.Solves, p.Queued)
		if *verbose {
			for _, c := range p.Classes {
				fmt.Fprintf(stdout, "    %-12s p50 %7.3fms  p99 %7.3fms  slo %4.0fms  attain %5.1f%%  burn %.2f\n",
					c.Name, c.P50MS, c.P99MS, c.SLOMS, c.Attainment*100, c.BurnRate)
			}
		}
	}

	if *baseline != "" {
		base, err := sim.LoadBaseline(*baseline, rep.Name)
		if err != nil {
			return err
		}
		if bad := sim.Compare(base, rep, *tolerance); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintln(stdout, "REGRESSION:", b)
			}
			return fmt.Errorf("%d capacity regression(s) vs %s", len(bad), *baseline)
		}
		fmt.Fprintf(stdout, "capacity gate: within %.0f%% of %s\n", *tolerance*100, *baseline)
	}
	return nil
}
