package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calib/internal/ise"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 30, 5)
	inst.AddJob(8, 25, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ise.WriteInstance(f, inst); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesAndRenders(t *testing.T) {
	path := writeFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-instance", path, "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"windows", "schedule", "replay:", "jobs completed"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "INFEASIBLE") {
		t.Errorf("unexpected infeasible replay:\n%s", s)
	}
}

func TestRunWithExplicitSchedule(t *testing.T) {
	path := writeFixture(t)
	sched := ise.NewSchedule(1)
	sched.Calibrate(0, 0)
	sched.Place(0, 0, 0)
	sched.Place(1, 0, 8) // runs [8,12) — leaks past calibration [0,10): infeasible
	spath := filepath.Join(t.TempDir(), "sched.json")
	f, err := os.Create(spath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.WriteSchedule(f, sched); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-instance", path, "-schedule", spath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Errorf("infeasible schedule not flagged:\n%s", out.String())
	}
}

func TestRunRequiresInstance(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -instance accepted")
	}
}
