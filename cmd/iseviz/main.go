// Command iseviz renders an instance's job windows and a schedule as
// ASCII Gantt charts (the visual language of the paper's Figure 1).
//
// Usage:
//
//	iseviz -instance inst.json [-schedule sched.json] [-stats]
//
// Without -schedule, the instance is solved first (default options)
// and the resulting schedule is rendered. With -stats, the schedule is
// also replayed through the discrete-event simulator and utilization
// statistics are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"calib"
	"calib/internal/exp"
	"calib/internal/ise"
	"calib/internal/replay"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iseviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iseviz", flag.ContinueOnError)
	instPath := fs.String("instance", "", "instance JSON file (required)")
	schedPath := fs.String("schedule", "", "schedule JSON file (optional; solves if absent)")
	stats := fs.Bool("stats", false, "also replay the schedule and print utilization statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *instPath == "" {
		return fmt.Errorf("-instance is required")
	}
	f, err := os.Open(*instPath)
	if err != nil {
		return err
	}
	inst, err := ise.ReadInstance(f)
	f.Close()
	if err != nil {
		return err
	}
	var sched *ise.Schedule
	if *schedPath != "" {
		g, err := os.Open(*schedPath)
		if err != nil {
			return err
		}
		sched, err = ise.ReadSchedule(g)
		g.Close()
		if err != nil {
			return err
		}
	} else {
		sol, err := calib.Solve(inst, nil)
		if err != nil {
			return err
		}
		sched = sol.Schedule
	}
	if err := calib.Validate(inst, sched); err != nil {
		fmt.Fprintf(stdout, "WARNING: schedule is infeasible: %v\n\n", err)
	}
	fmt.Fprint(stdout, exp.Windows(inst))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, exp.Gantt(inst, sched))
	if *stats {
		rep := replay.Replay(inst, sched)
		fmt.Fprintln(stdout)
		if !rep.Feasible {
			fmt.Fprintf(stdout, "replay: INFEASIBLE (%s)\n", rep.Violation)
			return nil
		}
		fmt.Fprintf(stdout, "replay: %d jobs completed, %d calibrations, utilization %.1f%% (%d busy / %d calibrated ticks)\n",
			rep.JobsCompleted, len(sched.Calibrations), 100*rep.Utilization, rep.BusyTicks, rep.CalibratedTicks)
		for m, ms := range rep.PerMachine {
			if ms.Calibrations == 0 && ms.Jobs == 0 {
				continue
			}
			fmt.Fprintf(stdout, "  m%-3d %2d calibrations, %2d jobs, %3d busy ticks\n", m, ms.Calibrations, ms.Jobs, ms.BusyTicks)
		}
	}
	return nil
}
