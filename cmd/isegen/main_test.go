package main

import (
	"bytes"
	"testing"

	"calib/internal/ise"
)

func TestRunAllFamilies(t *testing.T) {
	for _, fam := range []string{"mixed", "long", "short", "unit", "stockpile", "partition", "crossing", "poisson"} {
		var out bytes.Buffer
		if err := run([]string{"-family", fam, "-n", "12", "-m", "2", "-seed", "3"}, &out); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		inst, err := ise.ReadInstance(&out)
		if err != nil {
			t.Fatalf("%s: emitted invalid instance: %v", fam, err)
		}
		if inst.N() == 0 {
			t.Errorf("%s: empty instance", fam)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different instances")
	}
}

func TestRunRejectsUnknownFamily(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "nope"}, &out); err == nil {
		t.Error("unknown family accepted")
	}
}
