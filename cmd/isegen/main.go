// Command isegen generates random ISE instances (JSON on stdout) from
// the workload families used in the experiments.
//
// Usage:
//
//	isegen [-family mixed|long|short|unit|stockpile|partition|crossing|
//	        poisson|clustered]
//	       [-n 20] [-m 2] [-t 10] [-seed 1] [-long-prob 0.5] [-clusters 4]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"calib/internal/ise"
	"calib/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("isegen", flag.ContinueOnError)
	family := fs.String("family", "mixed", "workload family: mixed, long, short, unit, stockpile, partition, crossing, poisson, clustered")
	n := fs.Int("n", 20, "approximate number of jobs")
	m := fs.Int("m", 2, "machines")
	T := fs.Int64("t", 10, "calibration length")
	seed := fs.Int64("seed", 1, "random seed")
	longProb := fs.Float64("long-prob", 0.5, "long-window probability (mixed family)")
	clusters := fs.Int("clusters", 4, "independent time components (clustered family)")
	describe := fs.Bool("describe", false, "print instance statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var inst *ise.Instance
	switch *family {
	case "mixed":
		inst, _ = workload.Mixed(rng, *n, *m, *T, *longProb)
	case "long":
		inst, _ = workload.Long(rng, *n, *m, *T)
	case "short":
		inst, _ = workload.Short(rng, *n, *m, *T)
	case "unit":
		inst, _ = workload.Unit(rng, *n, *m, *T)
	case "stockpile":
		batch := *n / 4
		if batch < 1 {
			batch = 1
		}
		inst = workload.Stockpile(rng, 4, batch, *m, *T, 3**T)
	case "partition":
		inst = workload.PartitionHard(rng, *n, *T)
	case "crossing":
		inst = workload.CrossingAdversarial(rng, *n, *m, *T)
	case "poisson":
		inst = workload.Poisson(rng, *n, *m, *T, float64(*T))
	case "clustered":
		if *clusters < 1 {
			return fmt.Errorf("-clusters must be at least 1")
		}
		per := *n / *clusters
		if per < 1 {
			per = 1
		}
		inst, _ = workload.Clustered(rng, *clusters, per, *m, *T)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err := inst.Validate(); err != nil {
		return fmt.Errorf("generated invalid instance: %w", err)
	}
	if *describe {
		fmt.Fprint(os.Stderr, inst.Stats())
	}
	return ise.WriteInstance(stdout, inst)
}
