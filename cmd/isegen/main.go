// Command isegen generates random ISE instances (JSON on stdout) from
// the workload families used in the experiments.
//
// Usage:
//
//	isegen [-family mixed|long|short|unit|stockpile|partition|crossing|
//	        poisson|clustered]
//	       [-n 20] [-m 2] [-t 10] [-seed 1] [-long-prob 0.5] [-clusters 4]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"calib/internal/ise"
	"calib/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("isegen", flag.ContinueOnError)
	family := fs.String("family", "mixed", "workload family: mixed, long, short, unit, stockpile, partition, crossing, poisson, clustered")
	n := fs.Int("n", 20, "approximate number of jobs")
	m := fs.Int("m", 2, "machines")
	T := fs.Int64("t", 10, "calibration length")
	seed := fs.Int64("seed", 1, "random seed")
	longProb := fs.Float64("long-prob", 0.5, "long-window probability (mixed family)")
	clusters := fs.Int("clusters", 4, "independent time components (clustered family)")
	describe := fs.Bool("describe", false, "print instance statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *clusters < 1 {
		return fmt.Errorf("-clusters must be at least 1")
	}
	rng := rand.New(rand.NewSource(*seed))
	inst, err := workload.Family(rng, *family, workload.FamilyConfig{
		N: *n, M: *m, T: *T, LongProb: *longProb, Clusters: *clusters,
	})
	if err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return fmt.Errorf("generated invalid instance: %w", err)
	}
	if *describe {
		fmt.Fprint(os.Stderr, inst.Stats())
	}
	return ise.WriteInstance(stdout, inst)
}
