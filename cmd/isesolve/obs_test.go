package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// telemetryFixture mixes long-window jobs (window >= 2T) with short
// ones so a traced solve exercises every pipeline phase.
const telemetryFixture = `{"t": 10, "m": 2, "jobs": [
  {"id": 0, "release": 0, "deadline": 40, "processing": 5},
  {"id": 1, "release": 5, "deadline": 50, "processing": 8},
  {"id": 2, "release": 0, "deadline": 15, "processing": 4},
  {"id": 3, "release": 20, "deadline": 33, "processing": 5}
]}`

func TestRunTraceAndMetricsFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-warm", "-trace", "-metrics"},
		strings.NewReader(telemetryFixture), &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	msg := errBuf.String()
	for _, phase := range []string{"isesolve", "solve", "partition", "lp", "rounding", "edf", "mm"} {
		if !strings.Contains(msg, phase) {
			t.Errorf("-trace output missing span %q:\n%s", phase, msg)
		}
	}
	for _, key := range []string{
		"lp_pivots_total", "lp_warm_start_hits_total",
		"lp_cold_fallback_total", "decomp_components",
	} {
		if !strings.Contains(msg, key) {
			t.Errorf("-metrics output missing %q:\n%s", key, msg)
		}
	}
}

func TestRunTelemetryFileOutputs(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.json")
	metricsFile := filepath.Join(dir, "metrics.json")
	var out, errBuf bytes.Buffer
	err := run([]string{"-warm", "-trace-json", traceFile, "-metrics-out", metricsFile},
		strings.NewReader(telemetryFixture), &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}

	traceData, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var tree struct {
		Name     string            `json:"name"`
		Children []json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal(traceData, &tree); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, traceData)
	}
	if tree.Name != "isesolve" || len(tree.Children) == 0 {
		t.Errorf("trace tree = %q with %d children, want isesolve with children", tree.Name, len(tree.Children))
	}

	metricsData, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal(metricsData, &dump); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, metricsData)
	}
	if v, _ := dump["lp_pivots_total"].(float64); v <= 0 {
		t.Errorf("lp_pivots_total = %v, want > 0", dump["lp_pivots_total"])
	}
}

// TestRunQuietWithoutFlags pins the default-off contract at the CLI
// level: no telemetry flags, no telemetry output.
func TestRunQuietWithoutFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-warm"}, strings.NewReader(telemetryFixture), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"lp_pivots_total", "partition", "telemetry"} {
		if strings.Contains(errBuf.String(), banned) {
			t.Errorf("telemetry leaked without flags (%q):\n%s", banned, errBuf.String())
		}
	}
}
