// Command isesolve reads an ISE instance (JSON) from a file or stdin,
// solves it, validates the result, and writes the schedule (JSON) to
// stdout with a summary on stderr.
//
// Usage:
//
//	isesolve [-box greedy|exact|lp-round|lp-search] [-exact-lp]
//	         [-warm] [-par N] [-trim] [-opt | -lazy | -robust] [-compact]
//	         [-v] [-timeout D] [-budget N] [-trace] [-trace-json FILE]
//	         [-metrics] [-metrics-out FILE] [-pprof addr] [instance.json]
//
// -opt uses the exact branch-and-bound solver (small instances only);
// -lazy uses the practical heuristic; the default is the paper's
// approximation pipeline. -robust runs the degradation ladder
// (exact -> LP -> heuristic per time component), which always returns
// a feasible schedule within -timeout/-budget; those limits also apply
// to the plain pipeline, which instead aborts when they trip (see
// docs/ROBUSTNESS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"calib"
	"calib/internal/cliobs"
	"calib/internal/exp"
	"calib/internal/ise"
	"calib/internal/replay"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "isesolve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("isesolve", flag.ContinueOnError)
	box := fs.String("box", "greedy", "MM black box for short-window jobs: greedy, exact, lp-round, lp-search")
	exactLP := fs.Bool("exact-lp", false, "use exact rational arithmetic for the long-window LP")
	warm := fs.Bool("warm", false, "long-window LP hot path: bounded-variable simplex with warm-started lazy cuts")
	par := fs.Int("par", 0, "solve independent time components with up to N concurrent workers")
	trim := fs.Bool("trim", false, "drop idle short-window calibrations (beyond the paper)")
	opt := fs.Bool("opt", false, "solve exactly by branch and bound (small n only)")
	lazy := fs.Bool("lazy", false, "use the practical lazy heuristic instead of the paper's pipeline")
	robustF := fs.Bool("robust", false, "degradation ladder: exact -> LP -> heuristic per time component; always answers within -timeout/-budget")
	compact := fs.Bool("compact", false, "recolor the final schedule onto minimum machines")
	verbose := fs.Bool("v", false, "print LP objective and replay statistics to stderr")
	check := fs.Bool("check", false, "run the full cross-validation web (all solvers + oracles) and print its summary")
	tele := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start("isesolve", stderr); err != nil {
		return err
	}

	r := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	inst, err := ise.ReadInstance(r)
	if err != nil {
		return err
	}

	var sched *calib.Schedule
	switch {
	case (*opt && *lazy) || (*robustF && (*opt || *lazy)):
		return fmt.Errorf("-opt, -lazy and -robust are mutually exclusive")
	case *lazy:
		s, err := calib.SolveLazy(inst, 0)
		if err != nil {
			return err
		}
		sched = s
		fmt.Fprintf(stderr, "lazy heuristic: %d calibrations on %d machines (lower bound %d)\n",
			s.NumCalibrations(), s.MachinesUsed(), calib.LowerBound(inst))
	case *opt:
		s, cals, err := calib.SolveExact(inst, 0)
		if err != nil {
			return err
		}
		sched = s
		fmt.Fprintf(stderr, "exact optimum: %d calibrations\n", cals)
	default:
		opts := &calib.Options{
			ExactLP: *exactLP, TrimIdleCalibrations: *trim,
			WarmStart: *warm, Parallelism: *par,
			Trace: tele.Trace, Metrics: tele.Metrics,
			Timeout: tele.Timeout(), Budget: tele.Budget(),
		}
		switch *box {
		case "greedy":
			opts.MMBox = calib.MMGreedy
		case "exact":
			opts.MMBox = calib.MMExact
		case "lp-round":
			opts.MMBox = calib.MMLPRound
		case "lp-search":
			opts.MMBox = calib.MMLPSearch
		default:
			return fmt.Errorf("unknown MM box %q", *box)
		}
		if *robustF {
			sol, err := calib.SolveRobust(inst, opts)
			if err != nil {
				return err
			}
			sched = sol.Schedule
			status := "exact"
			if !sol.Exact {
				status = "approximate"
			}
			if sol.Degraded {
				status += ", degraded"
			}
			fmt.Fprintf(stderr, "robust: n=%d  components=%d  calibrations=%d (%s)  lower-bound=%d  ladder-lower=%.3f  machines=%d\n",
				inst.N(), sol.Components, sol.Calibrations, status, sol.LowerBound, sol.LadderLower, sol.MachinesUsed)
			for _, rep := range sol.Reports {
				if len(rep.Attempts) == 0 && !*verbose {
					continue
				}
				fmt.Fprintf(stderr, "  component %d (%d jobs): answered by %q, %d calibrations\n",
					rep.Component, rep.Jobs, rep.Rung, rep.Calibrations)
				for _, a := range rep.Attempts {
					fmt.Fprintf(stderr, "    fell off %q: %s (%v)\n", a.Rung, a.Reason, a.Err)
				}
			}
			break
		}
		sol, err := calib.Solve(inst, opts)
		if err != nil {
			return err
		}
		sched = sol.Schedule
		fmt.Fprintf(stderr, "n=%d (long %d, short %d)  calibrations=%d  lower-bound=%d  machines=%d\n",
			inst.N(), sol.LongJobs, sol.ShortJobs, sol.Calibrations, sol.LowerBound, sol.MachinesUsed)
		if *verbose && sol.LPObjective > 0 {
			fmt.Fprintf(stderr, "long-window LP objective: %.3f\n", sol.LPObjective)
		}
	}
	if *compact {
		c, err := calib.Compact(inst, sched)
		if err != nil {
			return err
		}
		sched = c
	}
	if err := calib.Validate(inst, sched); err != nil {
		return fmt.Errorf("internal error: produced an infeasible schedule: %w", err)
	}
	if *verbose {
		rep := replay.Replay(inst, sched)
		fmt.Fprintf(stderr, "replay: %d jobs completed, utilization %.1f%% (%d busy / %d calibrated ticks)\n",
			rep.JobsCompleted, 100*rep.Utilization, rep.BusyTicks, rep.CalibratedTicks)
	}
	if *check {
		summary, err := exp.CrossCheck(inst, nil)
		if err != nil {
			return fmt.Errorf("cross-check FAILED: %w", err)
		}
		fmt.Fprintf(stderr, "cross-check OK: %s\n", summary)
	}
	if err := tele.Finish(stderr); err != nil {
		return err
	}
	return ise.WriteSchedule(stdout, sched)
}
