package main

import (
	"bytes"
	"strings"
	"testing"

	"calib/internal/ise"
)

const fixture = `{"t": 10, "m": 1, "jobs": [
  {"id": 0, "release": 0, "deadline": 100, "processing": 5},
  {"id": 1, "release": 90, "deadline": 100, "processing": 5},
  {"id": 2, "release": 5, "deadline": 22, "processing": 6}
]}`

func solveWith(t *testing.T, args ...string) (*ise.Schedule, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	if err := run(args, strings.NewReader(fixture), &out, &errBuf); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errBuf.String())
	}
	sched, err := ise.ReadSchedule(&out)
	if err != nil {
		t.Fatalf("invalid schedule JSON: %v", err)
	}
	return sched, errBuf.String()
}

func TestRunDefaultPipeline(t *testing.T) {
	sched, msg := solveWith(t)
	if len(sched.Placements) != 3 {
		t.Errorf("placements = %d, want 3", len(sched.Placements))
	}
	if !strings.Contains(msg, "lower-bound") {
		t.Errorf("summary missing: %q", msg)
	}
}

func TestRunModes(t *testing.T) {
	optS, msg := solveWith(t, "-opt")
	if !strings.Contains(msg, "exact optimum") {
		t.Errorf("missing exact summary: %q", msg)
	}
	lazyS, msg := solveWith(t, "-lazy", "-v")
	if !strings.Contains(msg, "lazy heuristic") || !strings.Contains(msg, "replay") {
		t.Errorf("missing lazy/replay summary: %q", msg)
	}
	// Exact <= lazy <= pipeline calibrations.
	pipeS, _ := solveWith(t, "-compact")
	if optS.NumCalibrations() > lazyS.NumCalibrations() || lazyS.NumCalibrations() > pipeS.NumCalibrations() {
		t.Errorf("count ordering violated: opt %d, lazy %d, pipeline %d",
			optS.NumCalibrations(), lazyS.NumCalibrations(), pipeS.NumCalibrations())
	}
}

func TestRunBoxes(t *testing.T) {
	for _, box := range []string{"greedy", "exact", "lp-round"} {
		solveWith(t, "-box", box)
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-box", "bogus"}, strings.NewReader(fixture), &out, &errBuf); err == nil {
		t.Error("bogus box accepted")
	}
}

func TestRunConflictingFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-opt", "-lazy"}, strings.NewReader(fixture), &out, &errBuf); err == nil {
		t.Error("-opt -lazy accepted")
	}
}

func TestRunCrossCheck(t *testing.T) {
	_, msg := solveWith(t, "-check")
	if !strings.Contains(msg, "cross-check OK") {
		t.Errorf("missing cross-check summary: %q", msg)
	}
}

func TestRunBadInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, strings.NewReader("not json"), &out, &errBuf); err == nil {
		t.Error("garbage input accepted")
	}
}
