package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calib/internal/ise"
)

// pathologicalFile writes a 36-job, 4-component, all-long-window
// instance to disk: each component is small enough for the exact rung
// to prove optimality when given time, and the components are
// separated by gaps >= T so they decompose exactly (the component
// optima sum to the global optimum).
func pathologicalFile(t *testing.T) string {
	t.Helper()
	inst := ise.NewInstance(10, 1)
	for c := 0; c < 4; c++ {
		base := ise.Time(c * 200)
		for j := 0; j < 9; j++ {
			// Window length 30 >= 2T: long-window by Definition 1. Total
			// processing (22) fits the component's ~38-tick span, so each
			// component is feasible on the single declared machine and
			// the exact rung can prove its optimum.
			inst.AddJob(base+ise.Time(j), base+ise.Time(j)+30, ise.Time(2+j%2))
		}
	}
	var buf bytes.Buffer
	if err := ise.WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pathological.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// readMetric returns the aggregate value of a counter in a
// -metrics-out JSON file.
func readMetric(t *testing.T, path, name string) float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	v, ok := m[name].(float64)
	if !ok {
		t.Fatalf("metric %q missing from %s", name, path)
	}
	return v
}

// TestRobustTimeoutDegrades is the acceptance scenario: the same
// pathological instance solved twice with -robust. With an expired
// timeout every component degrades to a lower rung — yet a feasible
// schedule comes back, and the fallbacks are visible in the exported
// metrics. Without a timeout, the exact rung answers everywhere.
func TestRobustTimeoutDegrades(t *testing.T) {
	instPath := pathologicalFile(t)
	metPath := filepath.Join(t.TempDir(), "metrics.json")

	var out, errBuf bytes.Buffer
	// 1ns: expired before the first control check — degradation is
	// deterministic, no wall-clock sensitivity in CI.
	err := run([]string{"-robust", "-timeout", "1ns", "-metrics-out", metPath, instPath},
		strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatalf("timed robust run failed: %v (stderr: %s)", err, errBuf.String())
	}
	sched, err := ise.ReadSchedule(&out)
	if err != nil {
		t.Fatalf("invalid schedule JSON: %v", err)
	}
	fh, err := os.Open(instPath)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ise.ReadInstance(fh)
	fh.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := ise.Validate(inst, sched); err != nil {
		t.Fatalf("degraded schedule infeasible: %v", err)
	}
	if !strings.Contains(errBuf.String(), "degraded") {
		t.Errorf("summary does not report degradation: %q", errBuf.String())
	}
	if n := readMetric(t, metPath, "robust_fallback_total"); n <= 0 {
		t.Errorf("robust_fallback_total = %v, want > 0", n)
	}
	degradedCals := sched.NumCalibrations()

	// Same instance, no timeout: every (small) component is proven
	// optimal by the exact rung.
	out.Reset()
	errBuf.Reset()
	if err := run([]string{"-robust", instPath}, strings.NewReader(""), &out, &errBuf); err != nil {
		t.Fatalf("untimed robust run failed: %v (stderr: %s)", err, errBuf.String())
	}
	exactSched, err := ise.ReadSchedule(&out)
	if err != nil {
		t.Fatalf("invalid schedule JSON: %v", err)
	}
	if !strings.Contains(errBuf.String(), "(exact)") {
		t.Errorf("untimed summary not exact: %q", errBuf.String())
	}
	if exactSched.NumCalibrations() > degradedCals {
		t.Errorf("exact answer (%d calibrations) worse than degraded answer (%d)",
			exactSched.NumCalibrations(), degradedCals)
	}
}

// TestRobustFlagExclusive: -robust cannot combine with -opt or -lazy.
func TestRobustFlagExclusive(t *testing.T) {
	for _, extra := range []string{"-opt", "-lazy"} {
		var out, errBuf bytes.Buffer
		err := run([]string{"-robust", extra}, strings.NewReader(fixture), &out, &errBuf)
		if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Errorf("-robust %s: err = %v, want mutual-exclusion error", extra, err)
		}
	}
}
