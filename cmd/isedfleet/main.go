// Command isedfleet is the fleet router: it fronts N ised backends
// with the same /v1 HTTP/JSON surface a single daemon serves,
// consistent-hashing each request's canonical instance key so
// equivalent solves always land on the node that already holds the
// cached schedule (see docs/SERVICE.md, "Fleet").
//
// Usage:
//
//	isedfleet -backends URL[,URL...] | -roster FILE
//	          [-addr host:port] [-addr-file FILE]
//	          [-policy hash-affinity|least-loaded|round-robin]
//	          [-replicas N] [-probe-interval D] [-probe-timeout D]
//	          [-fail-after N] [-readmit-after N] [-roster-interval D]
//	          [-retry-after D]
//	          [-replication N] [-hint-dir DIR] [-hint-cap N]
//	          [-replication-queue N]
//	          [-trace] [-metrics] [-pprof addr]
//
// Membership is either static (-backends, comma-separated "name=url"
// or bare url entries) or declarative (-roster, a JSON file watched
// for changes: nodes can be added and removed without restarting the
// router; each ring rebuild is atomic and logged). Every backend is
// health-probed; a node that fails -fail-after consecutive probes is
// ejected from routing and readmitted after -readmit-after successful
// probes once it recovers.
//
// Replication (-replication, default 2) write-behinds every fresh
// solve's cached schedule to the key's ring successors, so a node loss
// does not cold-start its keys: the router peeks the surviving replica
// (X-Fleet-Route: replica-hit) instead of re-solving. Writes aimed at
// a down node park as hinted handoff (persisted under -hint-dir when
// set) and replay when it returns, together with a snapshot-diff warm
// transfer, before the node re-enters routing. -replication 1 turns
// all of this off and reproduces single-copy routing exactly.
//
// The router always exports /metrics (the fleet_* catalogue —
// spillover by reason, ejections, ring rebuilds — next to the usual
// export surface), /debug/vars and /debug/pprof on its own address.
// /v1/healthz answers the fleet-level view: per-node health, the
// active policy, and ring statistics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calib/internal/atomicfile"
	"calib/internal/cliobs"
	"calib/internal/fleet"
	"calib/internal/obs"
	"calib/internal/obs/obshttp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "isedfleet:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("isedfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8090", "listen address; port 0 picks a free port")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (atomic; for scripts and CI)")
	backends := fs.String("backends", "", "static roster: comma-separated name=url or url entries")
	roster := fs.String("roster", "", "JSON roster file, watched for membership changes (see docs/SERVICE.md)")
	rosterEvery := fs.Duration("roster-interval", time.Second, "how often to poll -roster for changes")
	policy := fs.String("policy", fleet.PolicyHashAffinity, "routing policy: hash-affinity, least-loaded, or round-robin")
	replicas := fs.Int("replicas", 0, "virtual nodes per backend on the consistent-hash ring (0 = 128)")
	probeEvery := fs.Duration("probe-interval", time.Second, "health probe spacing per backend")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "health probe timeout")
	failAfter := fs.Int("fail-after", 3, "consecutive failures that eject a backend from routing")
	readmitAfter := fs.Int("readmit-after", 2, "consecutive successful probes that readmit an ejected backend")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint when every candidate node refused")
	replication := fs.Int("replication", fleet.DefaultReplication,
		"replication factor: nodes (owner included) holding each solved key's cache entry; 1 disables replication")
	hintDir := fs.String("hint-dir", "", "persist hinted-handoff entries for down nodes in this directory (empty = memory only)")
	hintCap := fs.Int("hint-cap", 0, "max hinted-handoff entries per down node, oldest dropped first (0 = 512)")
	replQueue := fs.Int("replication-queue", 0, "max pending replica writes, oldest dropped first (0 = 1024)")
	tele := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start("isedfleet", stderr); err != nil {
		return err
	}
	defer tele.Finish(stderr)

	var members []fleet.Member
	var err error
	switch {
	case *backends != "" && *roster != "":
		return errors.New("-backends and -roster are mutually exclusive")
	case *backends != "":
		members, err = fleet.ParseStatic(*backends)
	case *roster != "":
		members, err = fleet.LoadRoster(*roster)
	default:
		return errors.New("no backends: pass -backends or -roster")
	}
	if err != nil {
		return err
	}

	reg := tele.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	obs.DeclareFleet(reg)

	f, err := fleet.New(fleet.Config{
		Members:          members,
		Policy:           *policy,
		Replicas:         *replicas,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     *probeTimeout,
		FailAfter:        *failAfter,
		ReadmitAfter:     *readmitAfter,
		RetryAfter:       *retryAfter,
		Replication:      *replication,
		HintDir:          *hintDir,
		HintCap:          *hintCap,
		ReplicationQueue: *replQueue,
		Metrics:          reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	f.Start()
	defer f.Close()

	watcherDone := make(chan struct{})
	if *roster != "" {
		go func() {
			defer close(watcherDone)
			f.WatchRoster(*roster, *rosterEvery, ctx.Done())
		}()
	} else {
		close(watcherDone)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", fleet.NewRouter(f))
	mux.Handle("/", obshttp.Handler(reg)) // /metrics, /debug/vars, /debug/pprof

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := atomicfile.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stderr, "isedfleet: routing %d backends (policy %s) on http://%s\n",
		len(members), *policy, bound)

	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "isedfleet: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-watcherDone
	return nil
}
