package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"calib/api"
	"calib/internal/atomicfile"
	"calib/internal/ise"
	"calib/internal/server"
)

// TestRouterLifecycle boots the router daemon over two in-process ised
// backends, routes a solve and its cached twin through it, scrapes the
// fleet metrics, and shuts down via context cancellation — the same
// sequence scripts/fleet_smoke.sh runs against the built binaries.
func TestRouterLifecycle(t *testing.T) {
	b1 := httptest.NewServer(server.New(server.Config{}))
	defer b1.Close()
	b2 := httptest.NewServer(server.New(server.Config{}))
	defer b2.Close()

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-backends", "n1=" + b1.URL + ",n2=" + b2.URL,
			"-probe-interval", "50ms",
		}, io.Discard)
	}()

	addr := waitForAddr(t, addrFile, done)
	base := "http://" + addr

	var fh api.FleetHealth
	getJSON(t, base+"/v1/healthz", &fh)
	if fh.Status != "ok" || fh.HealthyNodes != 2 || fh.Policy != "hash-affinity" {
		t.Fatalf("fleet health: %+v", fh)
	}

	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 40, 5)
	inst.AddJob(30, 70, 8)
	first, node1 := solveVia(t, base, inst)
	if first.Cached || first.Schedule == nil || node1 == "" {
		t.Fatalf("first solve: %+v via %q", first, node1)
	}
	again, node2 := solveVia(t, base, inst)
	if !again.Cached || node2 != node1 {
		t.Fatalf("re-solve: cached=%v via %q, want cache hit via %q", again.Cached, node2, node1)
	}

	metrics := httpGet(t, base+"/metrics")
	if !strings.Contains(metrics, `fleet_requests_total{endpoint="solve"} 2`) {
		t.Fatalf("/metrics missing fleet request count:\n%s", metrics)
	}
	if !strings.Contains(metrics, "fleet_nodes 2") {
		t.Fatalf("/metrics missing fleet_nodes:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not shut down")
	}
}

// TestRouterRosterFile: membership from -roster follows file rewrites
// without a restart.
func TestRouterRosterFile(t *testing.T) {
	b1 := httptest.NewServer(server.New(server.Config{}))
	defer b1.Close()
	b2 := httptest.NewServer(server.New(server.Config{}))
	defer b2.Close()

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	rosterFile := filepath.Join(dir, "roster.json")
	writeRoster := func(body string) {
		t.Helper()
		if err := atomicfile.WriteFile(rosterFile, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRoster(`{"nodes": [{"name": "n1", "url": "` + b1.URL + `"}]}`)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-roster", rosterFile,
			"-roster-interval", "20ms",
		}, io.Discard)
	}()

	addr := waitForAddr(t, addrFile, done)
	base := "http://" + addr
	var fh api.FleetHealth
	getJSON(t, base+"/v1/healthz", &fh)
	if len(fh.Nodes) != 1 {
		t.Fatalf("initial roster: %+v", fh)
	}

	writeRoster(`{"nodes": [{"name": "n1", "url": "` + b1.URL + `"}, {"name": "n2", "url": "` + b2.URL + `"}]}`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, base+"/v1/healthz", &fh)
		if len(fh.Nodes) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("roster change never applied: %+v", fh)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not shut down")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("expected a flag error")
	}
	if err := run(context.Background(), nil, io.Discard); err == nil {
		t.Fatal("expected an error without backends")
	}
	if err := run(context.Background(), []string{"-backends", "a=http://x", "-roster", "y"}, io.Discard); err == nil {
		t.Fatal("expected -backends/-roster conflict error")
	}
	if err := run(context.Background(), []string{"-backends", "a=http://x", "-policy", "nope"}, io.Discard); err == nil {
		t.Fatal("expected unknown policy error")
	}
}

func solveVia(t *testing.T, base string, inst *ise.Instance) (*api.SolveResponse, string) {
	t.Helper()
	buf, err := json.Marshal(api.SolveRequest{Instance: inst})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve status %d: %s", resp.StatusCode, raw)
	}
	var out api.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.Header.Get("X-Fleet-Node")
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func waitForAddr(t *testing.T, path string, done <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("router exited early: %v", err)
		default:
		}
		if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
			return strings.TrimSpace(string(raw))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("address file never appeared")
	return ""
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
