package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckValidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"date": "x", "benchmarks": [{"ns_per_op": 1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-check", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid JSON") {
		t.Errorf("missing confirmation: %q", out.String())
	}
}

func TestCheckInvalidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.json")
	// The bench.sh awk bug this release fixes produced exactly this
	// shape: an empty field between commas.
	if err := os.WriteFile(path, []byte(`{"ns_per_op": , "allocs": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-check", path}, &out, io.Discard); err == nil {
		t.Error("invalid JSON accepted")
	}
	if err := run([]string{"-check", filepath.Join(t.TempDir(), "missing.json")}, &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

// TestBenchMetricsFlag runs one quick experiment with -metrics and
// checks the solver series aggregated across the sweep's solves reach
// the default registry and the stderr dump.
func TestBenchMetricsFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-only", "T1", "-trials", "1", "-quick", "-metrics"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	msg := errBuf.String()
	for _, key := range []string{"lp_pivots_total", "tise_resolves_total", "solve_seconds"} {
		if !strings.Contains(msg, key) {
			t.Errorf("-metrics output missing %q:\n%s", key, msg)
		}
	}
}
