// Command isebench regenerates every figure and experiment table of
// the reproduction (see DESIGN.md's per-experiment index): Figures 1-3
// as executable ASCII constructions and experiments T1-T14 as aligned
// tables. With -csv DIR, tables are also written as CSV files.
//
// Usage:
//
//	isebench [-trials 5] [-quick] [-only T3] [-csv out/]
//	         [-timeout D] [-trace] [-metrics] [-metrics-out FILE]
//	         [-pprof addr] [-check file.json]
//
// -timeout arms a watchdog over the whole run: if the experiments have
// not finished when it expires, the process dumps all goroutine stacks
// to stderr and exits nonzero — so a hung sweep fails CI loudly
// instead of stalling the job until the runner's own kill.
//
// -check validates that the named file parses as JSON and exits; the
// bench harness uses it to smoke-test its own BENCH_lp.json output.
// The telemetry flags install a process-wide trace/registry that the
// experiment sweeps' solver calls report into (obs.SetDefault).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"calib/internal/cliobs"
	"calib/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "isebench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("isebench", flag.ContinueOnError)
	trials := fs.Int("trials", 5, "random instances per table cell")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast run")
	only := fs.String("only", "", "run a single experiment (T1..T12) or figure (F1..F3)")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	parallel := fs.Int("parallel", 0, "run experiments concurrently with this many workers (0 = sequential)")
	checkPath := fs.String("check", "", "validate that the named file parses as JSON, then exit")
	tele := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkPath != "" {
		return checkJSON(*checkPath, stdout)
	}
	if err := tele.Start("isebench", stderr); err != nil {
		return err
	}
	if d := tele.Timeout(); d > 0 {
		watchdog := time.AfterFunc(d, func() {
			fmt.Fprintf(stderr, "isebench: watchdog: run exceeded %v; goroutine dump follows\n", d)
			pprof.Lookup("goroutine").WriteTo(stderr, 1)
			os.Exit(2)
		})
		defer watchdog.Stop()
	}

	cfg := exp.Config{Trials: *trials, Quick: *quick}
	runFigure := func(id string) error {
		var out string
		var err error
		switch id {
		case "F1":
			out, err = exp.Figure1()
		case "F2":
			out = exp.Figure2()
		case "F3":
			out, err = exp.Figure3()
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, out)
		return nil
	}
	table := func(id string) *exp.Table {
		switch id {
		case "T1":
			return exp.T1LongWindow(cfg)
		case "T2":
			return exp.T2SpeedTrade(cfg)
		case "T3":
			return exp.T3ShortWindow(cfg)
		case "T4":
			return exp.T4EndToEnd(cfg)
		case "T5":
			return exp.T5UnitBaselines(cfg)
		case "T6":
			return exp.T6LPEngines(cfg)
		case "T7":
			return exp.T7Crossing(cfg)
		case "T8":
			return exp.T8Scaling(cfg)
		case "T9":
			return exp.T9Practical(cfg)
		case "T10":
			return exp.T10IntegralityGap(cfg)
		case "T11":
			return exp.T11GammaSweep(cfg)
		case "T12":
			return exp.T12Utilization(cfg)
		case "T13":
			return exp.T13HeuristicAblation(cfg)
		case "T14":
			return exp.T14Online(cfg)
		}
		return nil
	}
	emit := func(id string, t *exp.Table) error {
		if t == nil {
			return fmt.Errorf("unknown experiment %q", id)
		}
		t.Fprint(stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, strings.ToLower(id)+".csv"))
			if err != nil {
				return err
			}
			t.CSV(f)
			return f.Close()
		}
		return nil
	}

	if *only != "" {
		id := strings.ToUpper(*only)
		if strings.HasPrefix(id, "F") {
			return runFigure(id)
		}
		if err := emit(id, table(id)); err != nil {
			return err
		}
		return tele.Finish(stderr)
	}
	for _, id := range []string{"F1", "F2", "F3"} {
		if err := runFigure(id); err != nil {
			return err
		}
	}
	ids := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "T12", "T13", "T14"}
	if *parallel > 0 {
		tables := exp.AllParallel(cfg, *parallel)
		for i, t := range tables {
			if err := emit(ids[i], t); err != nil {
				return err
			}
		}
		return tele.Finish(stderr)
	}
	for _, id := range ids {
		if err := emit(id, table(id)); err != nil {
			return err
		}
	}
	return tele.Finish(stderr)
}

// checkJSON verifies that path parses as JSON — the bench harness's
// output smoke test.
func checkJSON(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("%s: invalid JSON: %w", path, err)
	}
	fmt.Fprintf(stdout, "%s: valid JSON (%d bytes)\n", path, len(data))
	return nil
}
