package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "F2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Errorf("missing figure output:\n%s", out.String())
	}
}

func TestRunSingleTableWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "T5", "-trials", "2", "-quick", "-csv", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T5") {
		t.Errorf("missing table output:\n%s", out.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "t5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "OPT") {
		t.Errorf("CSV lacks headers:\n%s", csv)
	}
}

// TestRunFullSuiteQuick exercises the default all-figures-all-tables
// path at the smallest scale, sequentially and in parallel.
func TestRunFullSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "-trials", "1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "T1 —", "T14 —"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	var pout bytes.Buffer
	if err := run([]string{"-quick", "-trials", "1", "-parallel", "4"}, &pout, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pout.String(), "T14 —") {
		t.Error("parallel run incomplete")
	}
}

func TestRunUnknownIDs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "T99"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-only", "F9"}, &out, io.Discard); err == nil {
		t.Error("unknown figure accepted")
	}
}
