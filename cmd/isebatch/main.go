// Command isebatch evaluates the standard policy set (paper pipeline,
// trimmed+compacted pipeline, lazy heuristic, naive grid) over a
// directory of instance JSON files, in parallel, and prints a
// comparison table plus a per-instance winner summary.
//
// Usage:
//
//	isebatch [-workers N] [-dedup] [-checkpoint FILE] [-csv out.csv]
//	         [-timeout D] [-budget N] [-faults SPEC] [-fault-seed N]
//	         [-trace] [-metrics] [-metrics-out FILE]
//	         [-pprof addr] dir/
//
// -timeout and -budget bound each individual policy solve; the LP
// pipeline policies report an error row when a limit trips, while the
// "robust" policy degrades to a cheaper solver and still answers.
//
// -checkpoint makes the run crash-safe: every completed (instance,
// policy) row is appended — CRC-stamped and fsynced — to FILE the
// moment it finishes. Re-running the same command after a crash (or
// SIGKILL) resumes: checkpointed rows are replayed verbatim, only the
// missing ones are solved, and the final report matches an
// uninterrupted run row-for-row. Mutually exclusive with -dedup
// (deduplicated rows derive from their twin's solve, so per-row
// journaling would record derived data as primary).
//
// -faults arms deterministic fault injection in the solver pipeline
// (chaos testing; see docs/ROBUSTNESS.md), e.g. -faults
// solve_panic:0.2 makes the "robust" policy absorb injected panics
// while the plain LP policies report them as error rows.
//
// -dedup groups instances that are equivalent up to job order and a
// uniform time shift (internal/canon), solves each group once per
// policy, and replays the schedule into every twin's own frame —
// duplicate-heavy corpora pay only for their unique instances.
//
// The telemetry flags install a process-wide trace/registry that the
// solver layers pick up (obs.SetDefault), so one run's metrics
// aggregate across every instance and policy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"calib/internal/batch"
	"calib/internal/cliobs"
	"calib/internal/exp"
	"calib/internal/fault"
	"calib/internal/ise"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "isebatch:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("isebatch", flag.ContinueOnError)
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers")
	dedup := fs.Bool("dedup", false, "solve canonically equivalent instances once and replay the schedule for their twins")
	ckPath := fs.String("checkpoint", "", "journal completed rows to this file and resume from it (crash-safe; incompatible with -dedup)")
	csvPath := fs.String("csv", "", "also write the full report as CSV")
	faults := fault.Register(fs)
	tele := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckPath != "" && *dedup {
		return fmt.Errorf("-checkpoint and -dedup are mutually exclusive")
	}
	if err := tele.Start("isebatch", stderr); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: isebatch [flags] dir/")
	}
	files, err := filepath.Glob(filepath.Join(fs.Arg(0), "*.json"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no *.json instances under %s", fs.Arg(0))
	}
	sort.Strings(files)
	var items []batch.Item
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return err
		}
		inst, err := ise.ReadInstance(fh)
		fh.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		items = append(items, batch.Item{Name: filepath.Base(f), Instance: inst})
	}

	inj, err := faults.Build(tele.Metrics)
	if err != nil {
		return err
	}
	policies := batch.DefaultPoliciesCtl(batch.Limits{
		Timeout: tele.Timeout(), Budget: tele.Budget(), Metrics: tele.Metrics,
		Fault: inj,
	})
	var rep *batch.Report
	switch {
	case *dedup:
		rep = batch.RunDedup(items, policies, *workers, tele.Metrics)
	case *ckPath != "":
		ck, err := batch.OpenCheckpoint(*ckPath)
		if err != nil {
			return err
		}
		if done, skipped := ck.Len(), ck.Skipped; done > 0 || skipped > 0 {
			fmt.Fprintf(stderr, "isebatch: resuming from %s: %d rows checkpointed, %d damaged lines discarded\n",
				*ckPath, done, skipped)
		}
		rep, err = batch.RunCheckpoint(items, policies, *workers, ck)
		if cerr := ck.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	default:
		rep = batch.Run(items, policies, *workers)
	}
	table := exp.NewTable(fmt.Sprintf("batch report — %d instances x %d policies", len(items), len(policies)),
		"instance", "policy", "n", "cals", "LB", "machines", "util", "ms", "error")
	for _, row := range rep.Rows {
		table.Add(row.Item, row.Policy, row.N, row.Calibrations, row.LowerBound,
			row.Machines, row.Utilization, row.Millis, row.Err)
	}
	table.Fprint(stdout)

	best := rep.Best()
	names := make([]string, 0, len(best))
	for name := range best {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(stdout, "winners (fewest calibrations):")
	for _, name := range names {
		b := best[name]
		fmt.Fprintf(stdout, "  %-24s %-20s %d calibrations (LB %d)\n", name, b.Policy, b.Calibrations, b.LowerBound)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		table.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return tele.Finish(stderr)
}
