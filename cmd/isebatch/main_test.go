package main

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calib/internal/ise"
	"calib/internal/workload"
)

func TestRunBatchDirectory(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3; i++ {
		inst, _ := workload.Mixed(rng, 8, 1, 10, 0.5)
		f, err := os.Create(filepath.Join(dir, string(rune('a'+i))+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := ise.WriteInstance(f, inst); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	csv := filepath.Join(dir, "report.csv")
	var out bytes.Buffer
	if err := run([]string{"-workers", "4", "-csv", csv, dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"batch report", "winners", "lazy", "paper"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "instance,policy") {
		t.Errorf("CSV missing header:\n%s", data)
	}
}

func TestRunBatchErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, io.Discard); err == nil {
		t.Error("missing dir accepted")
	}
	if err := run([]string{t.TempDir()}, &out, io.Discard); err == nil {
		t.Error("empty dir accepted")
	}
}
