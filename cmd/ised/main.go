// Command ised is the solver service daemon: it serves the /v1
// HTTP/JSON API (solve, batch, healthz) backed by the robust solving
// ladder, a canonicalization-keyed schedule cache, and admission
// control with load shedding (see docs/SERVICE.md).
//
// Usage:
//
//	ised [-addr host:port] [-addr-file FILE]
//	     [-max-inflight N] [-max-queue N] [-queue-wait D]
//	     [-cache N] [-warm] [-par N]
//	     [-cache-file FILE] [-cache-save-interval D] [-drain-wait D]
//	     [-timeout D] [-budget N]
//	     [-faults SPEC] [-fault-seed N]
//	     [-flight N] [-trace-log FILE] [-trace-log-max-bytes N]
//	     [-slo-objective F] [-slo-threshold D]
//	     [-cache-transfer-open]
//	     [-trace] [-trace-json FILE] [-metrics] [-metrics-out FILE]
//	     [-pprof addr]
//
// The daemon always exports /metrics (Prometheus text), /debug/vars
// (expvar), /debug/pprof, and the request flight recorder at
// /debug/requests on its own address — -pprof adds a second, separate
// listener for operators who keep debug endpoints off the service
// port. -timeout and -budget here are the per-request maxima: a
// request may ask for less via timeout_ms/budget, never more.
//
// -trace-log appends every request's decision record — the same record
// /debug/requests serves — to a CRC-framed JSONL file, size-rotated at
// -trace-log-max-bytes and torn-tail tolerant like the batch journal,
// so a day of production traffic can be replayed or audited offline.
// -slo-objective and -slo-threshold configure the slo_* burn-rate
// series (defaults: 99% of requests under 500ms, per route).
//
// With -cache-file the schedule cache survives restarts: it is
// restored at boot (corrupt entries discarded, counted in
// cache_restore_corrupt_total) and snapshotted atomically on graceful
// shutdown and every -cache-save-interval, so even a SIGKILLed daemon
// comes back with its last periodic snapshot.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /v1/healthz
// flips to 503 {"draining": true} immediately, -drain-wait gives load
// balancers time to divert traffic, in-flight solves finish (they are
// already bounded by -timeout/-budget), and the cache is saved. A
// second signal kills the process the hard way.
//
// -faults arms deterministic fault injection (chaos testing only; see
// docs/ROBUSTNESS.md): a comma-separated list of point:rate[:arg],
// e.g. -faults solve_panic:0.1,solve_latency:0.5:20ms, driven by the
// seeded schedule of -fault-seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calib/internal/atomicfile"
	"calib/internal/cliobs"
	"calib/internal/fault"
	"calib/internal/obs"
	"calib/internal/obs/obshttp"
	"calib/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ised:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ised", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address; port 0 picks a free port")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts and CI)")
	maxInflight := fs.Int("max-inflight", 0, "bound on concurrently admitted solves (0 = 256); beyond it requests queue briefly, then shed with 429")
	maxQueue := fs.Int("max-queue", 0, "bound on requests waiting for an admission slot (0 = same as -max-inflight, -1 = shed immediately)")
	queueWait := fs.Duration("queue-wait", 0, "how long a queued request waits for a slot before shedding (0 = 100ms)")
	cacheSize := fs.Int("cache", 0, "canonical schedule cache capacity in entries (0 = 4096, -1 = disabled)")
	warm := fs.Bool("warm", false, "enable LP warm starts in the solving pipeline")
	par := fs.Int("par", 0, "per-solve component parallelism (0 = sequential)")
	cacheFile := fs.String("cache-file", "", "persist the schedule cache to this snapshot file (restored at boot, saved on shutdown)")
	cacheEvery := fs.Duration("cache-save-interval", 0, "also snapshot the cache periodically (0 = only on graceful shutdown)")
	drainWait := fs.Duration("drain-wait", 0, "after the first signal, serve with healthz draining for this long before closing the listener")
	flight := fs.Int("flight", 0, "request flight recorder capacity behind /debug/requests (0 = 2048, -1 = disabled)")
	traceLog := fs.String("trace-log", "", "append every request's decision record to this JSONL file (CRC-framed, crash-tolerant)")
	traceLogMax := fs.Int64("trace-log-max-bytes", 64<<20, "rotate -trace-log once it would exceed this many bytes, keeping one rotated file (0 = never)")
	sloObjective := fs.Float64("slo-objective", 0, "fraction of requests that must answer under -slo-threshold (0 = 0.99)")
	sloThreshold := fs.Duration("slo-threshold", 0, "per-request latency objective for the slo_* series (0 = 500ms)")
	transferOpen := fs.Bool("cache-transfer-open", false, "allow non-loopback peers to use /v1/cache/entries (multi-host fleet replication)")
	faults := fault.Register(fs)
	tele := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start("ised", stderr); err != nil {
		return err
	}
	defer tele.Finish(stderr)

	// The daemon always has a registry — a service without metrics is
	// blind — reusing the telemetry one when a -metrics/-pprof flag
	// already created it.
	reg := tele.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		obs.Declare(reg)
	}
	obs.DeclareService(reg)

	inj, err := faults.Build(reg)
	if err != nil {
		return err
	}

	var tlog *server.TraceLog
	if *traceLog != "" {
		tlog, err = server.OpenTraceLog(*traceLog, *traceLogMax, reg)
		if err != nil {
			return fmt.Errorf("trace log: %w", err)
		}
		defer func() {
			if err := tlog.Close(); err != nil {
				fmt.Fprintf(stderr, "ised: trace log close failed: %v\n", err)
			}
		}()
	}

	srv := server.New(server.Config{
		MaxInFlight:       *maxInflight,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		CacheEntries:      *cacheSize,
		MaxTimeout:        tele.Timeout(),
		MaxBudget:         tele.Budget(),
		WarmStart:         *warm,
		Parallelism:       *par,
		Metrics:           reg,
		Fault:             inj,
		FlightRecords:     *flight,
		TraceLog:          tlog,
		SLOObjective:      *sloObjective,
		SLOThreshold:      *sloThreshold,
		Trace:             tele.Trace,
		CacheTransferOpen: *transferOpen,
	})

	if *cacheFile != "" {
		// A damaged or unreadable snapshot costs cache entries, never
		// the boot: intact entries load, the rest are counted and the
		// daemon starts cold for them.
		st, err := srv.LoadCache(*cacheFile)
		if err != nil {
			fmt.Fprintf(stderr, "ised: cache restore from %s failed (starting cold): %v\n", *cacheFile, err)
		} else if st.Restored > 0 || st.Corrupt > 0 {
			fmt.Fprintf(stderr, "ised: cache restored from %s: %d entries, %d corrupt discarded\n",
				*cacheFile, st.Restored, st.Corrupt)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("/debug/requests", srv)    // flight recorder: list view
	mux.Handle("/debug/requests/", srv)   // flight recorder: per-request detail
	mux.Handle("/", obshttp.Handler(reg)) // /metrics, /debug/vars, /debug/pprof

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Atomic (temp + rename): a file-watching fleet roster or smoke
		// script polling this file must never read a torn address.
		if err := atomicfile.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stderr, "ised: serving /v1/solve, /v1/batch, /v1/healthz and /metrics on http://%s\n", bound)

	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	// Periodic snapshots make SIGKILL survivable: the worst case loses
	// one interval of cache warmth, never the file (saves are atomic).
	saverDone := make(chan struct{})
	if *cacheFile != "" && *cacheEvery > 0 {
		go func() {
			defer close(saverDone)
			t := time.NewTicker(*cacheEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, err := srv.SaveCache(*cacheFile); err != nil {
						fmt.Fprintf(stderr, "ised: periodic cache save failed: %v\n", err)
					}
				}
			}
		}()
	} else {
		close(saverDone)
	}

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	// Drain before closing the listener: healthz flips to 503 +
	// draining so load balancers divert new traffic, while solve/batch
	// keep answering until Shutdown.
	srv.BeginDrain()
	fmt.Fprintln(stderr, "ised: draining (healthz now 503)")
	if *drainWait > 0 {
		time.Sleep(*drainWait)
	}
	fmt.Fprintln(stderr, "ised: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-saverDone
	if *cacheFile != "" {
		if n, err := srv.SaveCache(*cacheFile); err != nil {
			fmt.Fprintf(stderr, "ised: final cache save failed: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "ised: cache saved to %s (%d entries)\n", *cacheFile, n)
		}
	}
	return nil
}
