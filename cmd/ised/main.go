// Command ised is the solver service daemon: it serves the /v1
// HTTP/JSON API (solve, batch, healthz) backed by the robust solving
// ladder, a canonicalization-keyed schedule cache, and admission
// control with load shedding (see docs/SERVICE.md).
//
// Usage:
//
//	ised [-addr host:port] [-addr-file FILE]
//	     [-max-inflight N] [-max-queue N] [-queue-wait D]
//	     [-cache N] [-warm] [-par N]
//	     [-timeout D] [-budget N]
//	     [-trace] [-trace-json FILE] [-metrics] [-metrics-out FILE]
//	     [-pprof addr]
//
// The daemon always exports /metrics (Prometheus text), /debug/vars
// (expvar) and /debug/pprof on its own address — -pprof adds a second,
// separate listener for operators who keep debug endpoints off the
// service port. -timeout and -budget here are the per-request maxima:
// a request may ask for less via timeout_ms/budget, never more.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight solves
// finish (they are already bounded by -timeout/-budget), new requests
// are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calib/internal/cliobs"
	"calib/internal/obs"
	"calib/internal/obs/obshttp"
	"calib/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ised:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ised", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address; port 0 picks a free port")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts and CI)")
	maxInflight := fs.Int("max-inflight", 0, "bound on concurrently admitted solves (0 = 256); beyond it requests queue briefly, then shed with 429")
	maxQueue := fs.Int("max-queue", 0, "bound on requests waiting for an admission slot (0 = same as -max-inflight, -1 = shed immediately)")
	queueWait := fs.Duration("queue-wait", 0, "how long a queued request waits for a slot before shedding (0 = 100ms)")
	cacheSize := fs.Int("cache", 0, "canonical schedule cache capacity in entries (0 = 4096, -1 = disabled)")
	warm := fs.Bool("warm", false, "enable LP warm starts in the solving pipeline")
	par := fs.Int("par", 0, "per-solve component parallelism (0 = sequential)")
	tele := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start("ised", stderr); err != nil {
		return err
	}
	defer tele.Finish(stderr)

	// The daemon always has a registry — a service without metrics is
	// blind — reusing the telemetry one when a -metrics/-pprof flag
	// already created it.
	reg := tele.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		obs.Declare(reg)
	}
	obs.DeclareService(reg)

	srv := server.New(server.Config{
		MaxInFlight:  *maxInflight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		CacheEntries: *cacheSize,
		MaxTimeout:   tele.Timeout(),
		MaxBudget:    tele.Budget(),
		WarmStart:    *warm,
		Parallelism:  *par,
		Metrics:      reg,
	})

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("/", obshttp.Handler(reg)) // /metrics, /debug/vars, /debug/pprof

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stderr, "ised: serving /v1/solve, /v1/batch, /v1/healthz and /metrics on http://%s\n", bound)

	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "ised: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
