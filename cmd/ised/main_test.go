package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"calib/api"
	"calib/client"
	"calib/internal/ise"
)

// TestDaemonLifecycle boots the daemon on a free port, drives it
// through the Go client, scrapes /metrics, and shuts it down via
// context cancellation — the same sequence scripts/service_smoke.sh
// runs against the built binary in CI.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-max-inflight", "8"}, io.Discard)
	}()

	addr := waitForAddr(t, addrFile, done)
	base := "http://" + addr
	cl := client.New(base)

	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" || h.MaxInFlight != 8 {
		t.Fatalf("health: %+v", h)
	}

	inst := ise.NewInstance(10, 1)
	inst.AddJob(0, 40, 5)
	inst.AddJob(30, 70, 8)
	first, err := cl.Solve(context.Background(), &api.SolveRequest{Instance: inst})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if first.Cached || first.Schedule == nil {
		t.Fatalf("first solve: %+v", first)
	}
	again, err := cl.Solve(context.Background(), &api.SolveRequest{Instance: inst})
	if err != nil {
		t.Fatalf("re-solve: %v", err)
	}
	if !again.Cached {
		t.Fatal("identical re-solve not served from cache")
	}

	// The debug mux rides on the service port.
	metrics := httpGet(t, base+"/metrics")
	if !strings.Contains(metrics, "cache_hits_total 1") {
		t.Fatalf("/metrics missing cache hit:\n%s", metrics)
	}
	if !strings.Contains(metrics, `service_requests_total{endpoint="solve"} 2`) {
		t.Fatalf("/metrics missing request count:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("expected a flag error")
	}
	if err := run(context.Background(), []string{"-addr", "not-an-address"}, io.Discard); err == nil {
		t.Fatal("expected a listen error")
	}
}

func waitForAddr(t *testing.T, path string, done <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
			return strings.TrimSpace(string(raw))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("address file never appeared")
	return ""
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
