package calib_test

// Golden regression corpus: fixed instances under testdata/ with the
// recorded behavior of the default pipeline, the lazy heuristic, and
// the lower bound. These guard against silent behavioral drift — an
// intentional algorithm change should update the table (and say so in
// the commit), an unintentional one should fail here first.
//
// Feasibility (not just counts) is asserted for every solver output,
// and the invariant chain LB <= lazy <= paper-pipeline is checked
// per fixture.

import (
	"os"
	"path/filepath"
	"testing"

	"calib"
	"calib/internal/ise"
)

var golden = []struct {
	file         string
	n            int
	pipelineCals int
	lazyCals     int
	lowerBound   int
}{
	{"crossing_6.json", 10, 25, 9, 7},
	{"long_3.json", 9, 20, 5, 4},
	{"mixed_1.json", 21, 32, 8, 5},
	{"mixed_2.json", 38, 54, 11, 9},
	{"poisson_7.json", 16, 42, 13, 10},
	{"short_4.json", 16, 17, 8, 6},
	{"unit_5.json", 12, 16, 3, 2},
}

func loadFixture(t *testing.T, name string) *calib.Instance {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inst, err := ise.ReadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestGoldenRegression(t *testing.T) {
	for _, g := range golden {
		g := g
		t.Run(g.file, func(t *testing.T) {
			inst := loadFixture(t, g.file)
			if inst.N() != g.n {
				t.Fatalf("fixture has %d jobs, golden says %d", inst.N(), g.n)
			}
			sol, err := calib.Solve(inst, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := calib.Validate(inst, sol.Schedule); err != nil {
				t.Fatalf("pipeline schedule infeasible: %v", err)
			}
			lz, err := calib.SolveLazy(inst, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := calib.Validate(inst, lz); err != nil {
				t.Fatalf("lazy schedule infeasible: %v", err)
			}
			if sol.Calibrations != g.pipelineCals {
				t.Errorf("pipeline calibrations = %d, golden %d", sol.Calibrations, g.pipelineCals)
			}
			if lz.NumCalibrations() != g.lazyCals {
				t.Errorf("lazy calibrations = %d, golden %d", lz.NumCalibrations(), g.lazyCals)
			}
			if sol.LowerBound != g.lowerBound {
				t.Errorf("lower bound = %d, golden %d", sol.LowerBound, g.lowerBound)
			}
			if sol.LowerBound > lz.NumCalibrations() || lz.NumCalibrations() > sol.Calibrations {
				t.Errorf("invariant chain broken: LB %d <= lazy %d <= pipeline %d",
					sol.LowerBound, lz.NumCalibrations(), sol.Calibrations)
			}
		})
	}
}
