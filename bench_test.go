package calib_test

// One benchmark per reproduced artifact (Figures 1-3, experiments
// T1-T14 of DESIGN.md). Each benchmark runs its experiment at reduced
// scale; `go test -bench=. -benchmem` therefore re-derives every
// figure and table of the reproduction, while `cmd/isebench` prints
// them at full scale. The experiment bodies contain hard assertions
// (they panic if a proven bound is violated), so these benches double
// as continuous bound checks.

import (
	"math/rand"
	"testing"
	"time"

	"calib"
	"calib/internal/core"
	"calib/internal/exp"
	"calib/internal/lp"
	"calib/internal/tise"
	"calib/internal/workload"
)

var benchCfg = exp.Config{Trials: 2, Quick: true}

func BenchmarkFig1Transform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Rounding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Figure2()
	}
}

func BenchmarkFig3Assignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1LongWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T1LongWindow(benchCfg)
	}
}

// BenchmarkT1LongWindowN40 is the headline end-to-end comparison at
// n=40: the seed pipeline (monolithic solve, dense tableau with the
// full pair-row family) versus the hot path introduced by this
// overhaul (time-component decomposition + bounded-variable revised
// simplex with warm-started lazy cuts). The workload is T1-style —
// long-window jobs planted around calibration clusters — at 4
// clusters x 10 jobs. "HotPath" reports the end-to-end quotient as
// "x-speedup"; scripts/bench.sh records both arms in BENCH_lp.json.
func BenchmarkT1LongWindowN40(b *testing.B) {
	inst, _ := workload.Clustered(rand.New(rand.NewSource(140)), 4, 10, 2, 10)
	hot := core.Options{Engine: tise.Revised, Strategy: tise.Bounded, Parallelism: 4}
	b.Run("Seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(inst, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HotPath", func(b *testing.B) {
		var seed, fast time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := core.Solve(inst, core.Options{}); err != nil {
				b.Fatal(err)
			}
			seed += time.Since(t0)
			t0 = time.Now()
			if _, err := core.Solve(inst, hot); err != nil {
				b.Fatal(err)
			}
			fast += time.Since(t0)
		}
		b.ReportMetric(float64(seed)/float64(fast), "x-speedup")
	})
}

func BenchmarkT2SpeedTrade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T2SpeedTrade(benchCfg)
	}
}

func BenchmarkT3ShortWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T3ShortWindow(benchCfg)
	}
}

func BenchmarkT4EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T4EndToEnd(benchCfg)
	}
}

func BenchmarkT5UnitBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T5UnitBaselines(benchCfg)
	}
}

func BenchmarkT6LPEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T6LPEngines(benchCfg)
	}
}

func BenchmarkT7Crossing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T7Crossing(benchCfg)
	}
}

// BenchmarkT8Scaling runs the T8 wall-clock table plus sub-benchmarks
// that isolate the three hot-path stages introduced by the performance
// overhaul. The *Vs* variants time both configurations inside one
// iteration and report the quotient as "x-speedup" (higher = faster
// new path); their ns/op is deliberately zeroed since the split
// timings are what matters.
func BenchmarkT8Scaling(b *testing.B) {
	b.Run("Table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = exp.T8Scaling(benchCfg)
		}
	})
	rng := rand.New(rand.NewSource(88))
	long, _ := workload.Long(rng, 24, 2, 10)
	b.Run("BoundedVsPairRows", func(b *testing.B) {
		// Same revised engine; Direct materializes the full pair-row
		// family, Bounded uses variable bounds + lazy cuts.
		var direct, bounded time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := tise.SolveLPWith(long, 6, tise.Revised, tise.Direct); err != nil {
				b.Fatal(err)
			}
			direct += time.Since(t0)
			t0 = time.Now()
			if _, err := tise.SolveLPWith(long, 6, tise.Revised, tise.Bounded); err != nil {
				b.Fatal(err)
			}
			bounded += time.Since(t0)
		}
		b.ReportMetric(float64(direct)/float64(bounded), "x-speedup")
		b.ReportMetric(0, "ns/op")
	})
	b.Run("WarmVsCold", func(b *testing.B) {
		// A binary-search-like m' sweep: one shared LPWarm chains bases
		// and cuts across probes; the cold arm starts fresh each probe.
		sweep := []int{6, 4, 5, 6, 7, 6}
		var cold, warm time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			for _, mp := range sweep {
				if _, err := tise.SolveLPBounded(long, mp, &tise.LPWarm{}); err != nil {
					b.Fatal(err)
				}
			}
			cold += time.Since(t0)
			t0 = time.Now()
			w := &tise.LPWarm{}
			for _, mp := range sweep {
				if _, err := tise.SolveLPBounded(long, mp, w); err != nil {
					b.Fatal(err)
				}
			}
			warm += time.Since(t0)
		}
		b.ReportMetric(float64(cold)/float64(warm), "x-speedup")
		b.ReportMetric(0, "ns/op")
	})
	clustered, _ := workload.Clustered(rand.New(rand.NewSource(89)), 4, 6, 2, 10)
	b.Run("DecomposedVsMonolithic", func(b *testing.B) {
		var mono, par time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := core.Solve(clustered, core.Options{}); err != nil {
				b.Fatal(err)
			}
			mono += time.Since(t0)
			t0 = time.Now()
			if _, err := core.Solve(clustered, core.Options{Parallelism: 4}); err != nil {
				b.Fatal(err)
			}
			par += time.Since(t0)
		}
		b.ReportMetric(float64(mono)/float64(par), "x-speedup")
		b.ReportMetric(0, "ns/op")
	})
}

func BenchmarkT9Practical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T9Practical(benchCfg)
	}
}

func BenchmarkT10IntegralityGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T10IntegralityGap(benchCfg)
	}
}

func BenchmarkT11GammaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T11GammaSweep(benchCfg)
	}
}

func BenchmarkT12Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T12Utilization(benchCfg)
	}
}

func BenchmarkT13HeuristicAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T13HeuristicAblation(benchCfg)
	}
}

func BenchmarkT14Online(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.T14Online(benchCfg)
	}
}

// Component micro-benchmarks: the stages T8 aggregates.

func benchInstance(n int) *calib.Instance {
	rng := rand.New(rand.NewSource(int64(n)))
	inst, _ := workload.Mixed(rng, n, 2, 10, 0.5)
	return inst
}

func BenchmarkSolveMixedN12(b *testing.B) {
	inst := benchInstance(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calib.Solve(inst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveMixedN24(b *testing.B) {
	inst := benchInstance(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calib.Solve(inst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTISELPBuildSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	inst, _ := workload.Long(rng, 10, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tise.SolveLP(inst, 3, tise.Float64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexDense(b *testing.B) {
	// A moderately sized random LP (feasible, bounded by construction).
	rng := rand.New(rand.NewSource(12))
	const nv, nc = 60, 40
	p := lp.NewProblem()
	vars := make([]int, nv)
	for v := 0; v < nv; v++ {
		vars[v] = p.AddVar("x", float64(1+rng.Intn(5)))
	}
	for c := 0; c < nc; c++ {
		var terms []lp.Term
		rhs := 0.0
		for v := 0; v < nv; v++ {
			if coef := rng.Intn(4); coef != 0 {
				terms = append(terms, lp.Term{Var: vars[v], Coeff: float64(coef)})
				rhs += float64(coef * rng.Intn(3))
			}
		}
		p.AddConstraint(lp.LE, rhs, terms...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactOPTN7(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	inst, _ := workload.Planted(rng, workload.PlantedConfig{
		Machines: 1, T: 8, CalibrationsPerMachine: 2, Window: workload.AnyWindow,
	})
	if inst.N() > 7 {
		inst.Jobs = inst.Jobs[:7]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := calib.SolveExact(inst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTISELPLargeDense(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	inst, _ := workload.Long(rng, 24, 2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tise.SolveLPWith(inst, 6, tise.Float64, tise.Direct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTISELPLargeRevised(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	inst, _ := workload.Long(rng, 24, 2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tise.SolveLPWith(inst, 6, tise.Revised, tise.Direct); err != nil {
			b.Fatal(err)
		}
	}
}
